"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.width == 8 and args.scheme == "hbh"

    def test_figure_choices(self):
        args = build_parser().parse_args(["figure", "5"])
        assert args.number == "5"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "12"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestRunCommand:
    def test_basic_run(self, capsys):
        rc = main(
            [
                "run",
                "--width", "3", "--height", "3",
                "--messages", "120", "--warmup", "20",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "packets delivered" in out
        assert "avg latency" in out

    def test_run_with_faults_prints_counters(self, capsys):
        rc = main(
            [
                "run",
                "--width", "3", "--height", "3",
                "--messages", "150", "--warmup", "20",
                "--link-error-rate", "0.05",
                "--multi-bit-fraction", "1.0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "retransmission_rounds" in out

    def test_run_schemes(self, capsys):
        for scheme in ("e2e", "fec", "none"):
            rc = main(
                [
                    "run",
                    "--width", "3", "--height", "3",
                    "--messages", "80", "--warmup", "10",
                    "--scheme", scheme,
                ]
            )
            assert rc == 0

    def test_run_adaptive_with_recovery(self, capsys):
        rc = main(
            [
                "run",
                "--width", "3", "--height", "3",
                "--messages", "80", "--warmup", "10",
                "--routing", "fully_adaptive",
                "--deadlock-recovery",
            ]
        )
        assert rc == 0


class TestFigureCommand:
    def test_figure5_tiny_scale(self, capsys):
        rc = main(["figure", "5", "--messages", "60", "--no-chart"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out
        assert "HBH" in out and "E2E" in out and "FEC" in out

    def test_figure_chart_rendering(self, capsys):
        rc = main(["figure", "5", "--messages", "60"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "(log x)" in out  # the ASCII chart was rendered


class TestTable1Command:
    def test_prints_paper_numbers(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "119.55" in out and "0.374862" in out


class TestSweepCommand:
    def test_two_point_sweep(self, capsys):
        rc = main(
            ["sweep", "--messages", "100", "--rates", "0.05", "0.2"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Latency vs injection rate" in out


class TestPermanentFaultFlags:
    def test_run_with_dead_link_reroutes(self, capsys):
        rc = main(
            [
                "run",
                "--width", "4", "--height", "4",
                "--messages", "150", "--warmup", "20",
                "--dead-link", "5:east",
                "--dead-vc", "6:south:1@100",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "permanent_faults_applied" in out

    def test_bad_dead_link_spec_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--dead-link", "5:sideways"])
        assert excinfo.value.code == 2
        assert "fault spec" in capsys.readouterr().err

    def test_bad_dead_router_spec_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "--dead-router", "ten"])
        assert excinfo.value.code == 2


class TestDegradeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["degrade"])
        assert args.width == 8 and args.kills == 8

    def test_tiny_campaign(self, capsys):
        rc = main(
            [
                "degrade",
                "--width", "4", "--height", "4",
                "--kills", "2",
                "--inject-cycles", "200",
                "--no-chart",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "dead links" in out
        assert "reconv" in out

    def test_json_output(self, capsys):
        import json

        rc = main(
            [
                "degrade",
                "--width", "4", "--height", "4",
                "--kills", "1",
                "--inject-cycles", "200",
                "--json",
            ]
        )
        assert rc == 0
        env = json.loads(capsys.readouterr().out)
        assert env["schema"] == "repro/v1"
        assert env["command"] == "degrade"
        assert env["config"]["width"] == 4
        points = env["result"]
        assert [p["kills"] for p in points] == [0, 1]
        assert points[0]["delivery_rate"] == 1.0


class TestJsonEnvelopes:
    """Every --json subcommand wraps its payload in the repro/v1 envelope."""

    def _parse(self, capsys):
        import json

        return json.loads(capsys.readouterr().out)

    def test_run_envelope(self, capsys):
        rc = main(
            [
                "run",
                "--width", "3", "--height", "3",
                "--messages", "80", "--warmup", "10",
                "--json",
            ]
        )
        assert rc == 0
        env = self._parse(capsys)
        assert env["schema"] == "repro/v1"
        assert env["command"] == "run"
        assert env["config"]["noc"]["width"] == 3
        assert env["result"]["packets_delivered"] == 80
        assert "config" not in env["result"]  # config lives in the envelope

    def test_lint_envelope(self, capsys):
        rc = main(["lint", "--width", "4", "--height", "4", "--json"])
        assert rc == 0
        env = self._parse(capsys)
        assert env["schema"] == "repro/v1"
        assert env["command"] == "lint"
        assert isinstance(env["result"], list)

    def test_sweep_envelope(self, capsys):
        rc = main(
            ["sweep", "--messages", "80", "--rates", "0.05", "0.1", "--json"]
        )
        assert rc == 0
        env = self._parse(capsys)
        assert env["schema"] == "repro/v1"
        assert env["command"] == "sweep"
        assert [p["rate"] for p in env["result"]] == [0.05, 0.1]
        assert all(p["result"]["cycles"] > 0 for p in env["result"])


class TestTelemetryFlag:
    def test_run_writes_valid_ndjson(self, capsys, tmp_path):
        from repro.telemetry import validate_ndjson_lines

        out_path = tmp_path / "run.ndjson"
        rc = main(
            [
                "run",
                "--width", "4", "--height", "4",
                "--messages", "120", "--warmup", "20",
                "--link-error-rate", "0.02",
                "--telemetry", str(out_path),
                "--metrics-interval", "50",
            ]
        )
        assert rc == 0
        assert "telemetry:" in capsys.readouterr().out
        lines = out_path.read_text().splitlines()
        assert len(lines) > 1
        assert validate_ndjson_lines(lines) == []

    def test_telemetry_summary_in_json_result(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "run.ndjson"
        rc = main(
            [
                "run",
                "--width", "3", "--height", "3",
                "--messages", "60", "--warmup", "10",
                "--telemetry", str(out_path),
                "--json",
            ]
        )
        assert rc == 0
        env = json.loads(capsys.readouterr().out)
        assert env["config"]["telemetry"]["enabled"] is True
        assert env["result"]["telemetry"]["samples"] >= 0


class TestCheckpointFlags:
    RUN_FLAGS = [
        "run",
        "--width", "3", "--height", "3",
        "--messages", "150", "--warmup", "20",
        "--link-error-rate", "0.02",
        "--json",
    ]

    def test_checkpoint_flags_must_pair(self, capsys):
        rc = main(["run", "--checkpoint-interval", "50"])
        assert rc == 2
        assert "together" in capsys.readouterr().err

    def test_run_writes_checkpoint_and_resume_completes_identically(
        self, capsys, tmp_path
    ):
        """`run --checkpoint` leaves its last snapshot behind; `run
        --resume` on that snapshot replays the remaining cycles and emits
        the exact same JSON envelope as the original complete run."""
        import json as _json

        ckpt = str(tmp_path / "cli.ckpt")
        rc = main(
            self.RUN_FLAGS + ["--checkpoint", ckpt, "--checkpoint-interval", "40"]
        )
        assert rc == 0
        golden = _json.loads(capsys.readouterr().out)
        assert golden["result"]["counters"]["checkpoints_written"] >= 1

        rc = main(["run", "--resume", ckpt, "--json"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "resuming from" in captured.err
        resumed = _json.loads(captured.out)
        assert resumed == golden

    def test_resume_missing_file_exits_2(self, capsys, tmp_path):
        rc = main(["run", "--resume", str(tmp_path / "nope.ckpt")])
        assert rc == 2
        assert "no such checkpoint" in capsys.readouterr().err


class TestVerifyCommand:
    def test_healthy_mesh_certifies(self, capsys):
        rc = main(["verify", "--width", "4", "--height", "4", "--routing", "xy"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "connectivity       PASS" in out
        assert "livelock-freedom   PASS" in out
        assert "deadlock-freedom   PASS" in out
        assert "CERTIFIED" in out

    def test_torus_xy_fails_with_witness(self, capsys):
        rc = main(
            ["verify", "--width", "4", "--height", "4", "--torus",
             "--routing", "xy"]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "deadlock-freedom   FAIL" in out
        assert "deadlock witness:" in out
        assert "NOT CERTIFIED" in out

    def test_single_link_kill_sweep(self, capsys):
        rc = main(
            ["verify", "--width", "3", "--height", "3",
             "--routing", "ft_table", "--single-link-kills",
             "--multi-kill", "2", "--samples", "3"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "single-link kills  PASS  24 exhaustive trials" in out
        assert "2-link kills       PASS  3 sampled trials" in out

    def test_degraded_flags_certify_the_degraded_platform(self, capsys):
        rc = main(
            ["verify", "--width", "4", "--height", "4", "--routing", "xy",
             "--dead-link", "5:east"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "1 permanent faults applied" in out

    def test_json_envelope(self, capsys):
        import json

        rc = main(
            ["verify", "--width", "3", "--height", "3", "--routing", "xy",
             "--json"]
        )
        assert rc == 0
        env = json.loads(capsys.readouterr().out)
        assert env["schema"] == "repro/v1"
        assert env["command"] == "verify"
        (entry,) = env["result"]
        assert entry["routing"]["certified"] is True
        assert entry["routing"]["delivered_pairs"] == 72

    def test_config_file_path(self, capsys, tmp_path):
        import json
        import pathlib

        fixture = (
            pathlib.Path(__file__).parent
            / "fixtures" / "lint" / "torus_xy_no_recovery.json"
        )
        rc = main(["verify", str(fixture)])
        assert rc == 1  # torus XY: deadlock-prone
        out = capsys.readouterr().out
        assert "deadlock-freedom   FAIL" in out

    def test_missing_config_file_exits_2(self, capsys, tmp_path):
        rc = main(["verify", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "error" in capsys.readouterr().err


class TestShapeFlags:
    def test_shape_flag_parses(self):
        args = build_parser().parse_args(["run", "--shape", "4x4x4"])
        assert args.shape == "4x4x4"

    def test_2d_shape_normalizes_to_legacy_keys(self, capsys):
        import json

        rc = main(
            ["run", "--shape", "3x3", "--messages", "60", "--warmup", "10",
             "--json"]
        )
        assert rc == 0
        noc = json.loads(capsys.readouterr().out)["config"]["noc"]
        assert noc["width"] == 3 and noc["height"] == 3
        assert "shape" not in noc

    def test_3d_shape_selects_mesh3d(self, capsys):
        import json

        rc = main(
            ["run", "--shape", "2x2x2", "--link-latency", "1,1,2",
             "--retx-depth", "5", "--messages", "60", "--warmup", "10",
             "--json"]
        )
        assert rc == 0
        noc = json.loads(capsys.readouterr().out)["config"]["noc"]
        assert noc["shape"] == [2, 2, 2]
        assert noc["topology"] == "mesh3d"
        assert noc["link_latency"] == [1, 1, 2]
        assert "width" not in noc

    def test_bad_shape_grammar_exits_2(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--shape", "4xx4"])
        assert "shape" in capsys.readouterr().err

    def test_kill_pillars_requires_a_3d_shape(self, capsys):
        rc = main(["degrade", "--shape", "4x4", "--kill-pillars"])
        assert rc == 2
        assert "3-axis" in capsys.readouterr().err

    def test_up_down_fault_specs_need_a_third_axis(self, capsys):
        rc = main(["run", "--dead-link", "0:up", "--shape", "4x4",
                   "--messages", "60", "--warmup", "10"])
        assert rc == 2
        assert "no such link" in capsys.readouterr().err


class TestCampaignCommand:
    """The fleet-scale campaign service front-end (docs/CAMPAIGNS.md)."""

    def _spec(self, tmp_path, names=("a", "b")):
        import json

        config = {
            "noc": {"width": 3, "height": 3},
            "workload": {
                "num_messages": 120,
                "warmup_messages": 20,
                "injection_rate": 0.1,
                "seed": 3,
            },
        }
        spec = tmp_path / "spec.json"
        spec.write_text(
            json.dumps(
                {"variants": [{"name": n, "config": config} for n in names]}
            )
        )
        return str(spec)

    def test_parser_defaults(self):
        # Unset flags stay None so --resume can tell "not given" from
        # "explicitly the default" when overriding journal settings.
        args = build_parser().parse_args(["campaign", "spec.json"])
        assert args.processes is None and args.retries is None
        assert args.resume is None and not args.no_cache

    def test_spec_and_resume_are_exclusive(self, capsys):
        assert main(["campaign"]) == 2
        assert "spec" in capsys.readouterr().err
        assert main(["campaign", "spec.json", "--resume", "dir"]) == 2
        assert "not both" in capsys.readouterr().err

    def test_campaign_dir_layout_and_envelope(self, capsys, tmp_path):
        import json
        import os

        camp = str(tmp_path / "camp")
        rc = main(
            ["campaign", self._spec(tmp_path), "--dir", camp, "--json"]
        )
        assert rc == 0
        env = json.loads(capsys.readouterr().out)
        assert env["schema"] == "repro/v1"
        assert env["command"] == "campaign"
        rows = env["result"]["rows"]
        assert [r["name"] for r in rows] == ["a", "b"]
        assert all(r["error"] is None for r in rows)
        # Variant b duplicates a's config, so it is served from cache.
        assert rows[1]["metadata"]["cache_hit"] is True
        assert env["result"]["stats"]["cache_hits"] == 1
        assert os.path.exists(os.path.join(camp, "journal.jsonl"))
        assert os.path.isdir(os.path.join(camp, "cache"))

    def test_rerunning_a_dir_requires_resume(self, capsys, tmp_path):
        spec = self._spec(tmp_path)
        camp = str(tmp_path / "camp")
        assert main(["campaign", spec, "--dir", camp, "--json"]) == 0
        capsys.readouterr()
        assert main(["campaign", spec, "--dir", camp]) == 2
        assert "resume" in capsys.readouterr().err

    def test_resume_completed_campaign_is_a_no_op_replay(
        self, capsys, tmp_path
    ):
        import json

        camp = str(tmp_path / "camp")
        assert (
            main(["campaign", self._spec(tmp_path), "--dir", camp, "--json"])
            == 0
        )
        first = json.loads(capsys.readouterr().out)
        assert main(["campaign", "--resume", camp, "--json"]) == 0
        second = json.loads(capsys.readouterr().out)
        metric = lambda r: (r["avg_latency"], r["packets_delivered"])  # noqa: E731
        assert [metric(r) for r in second["result"]["rows"]] == [
            metric(r) for r in first["result"]["rows"]
        ]
        assert second["result"]["stats"]["attempts"] == 1  # all carried

    def test_resume_honors_no_cache(self, capsys, tmp_path):
        import json
        import os

        from repro.service import CampaignJournal, read_journal

        camp = str(tmp_path / "camp")
        assert (
            main(["campaign", self._spec(tmp_path), "--dir", camp, "--json"])
            == 0
        )
        capsys.readouterr()
        # Queue a third variant duplicating the (now cached) config, then
        # resume with --no-cache: it must re-run, not hit the cache.
        jpath = os.path.join(camp, "journal.jsonl")
        config = read_journal(jpath).variants[0]["config"]
        with CampaignJournal.append_to(jpath) as journal:
            journal.append("queued", variant=2, name="c", config=config)
        rc = main(["campaign", "--resume", camp, "--no-cache", "--json"])
        assert rc == 0
        env = json.loads(capsys.readouterr().out)
        fresh = env["result"]["rows"][2]
        assert fresh["error"] is None
        assert "cache_hit" not in fresh["metadata"]
        assert env["result"]["stats"]["cache_hits"] == 0

    def test_resume_missing_dir_exits_2(self, capsys, tmp_path):
        rc = main(["campaign", "--resume", str(tmp_path / "nope")])
        assert rc == 2
        assert "journal" in capsys.readouterr().err

    def test_grid_spec_expands_axes(self, capsys, tmp_path):
        import json

        spec = tmp_path / "grid.json"
        spec.write_text(
            json.dumps(
                {
                    "base": {
                        "noc": {"width": 3, "height": 3},
                        "workload": {
                            "num_messages": 120,
                            "warmup_messages": 20,
                        },
                    },
                    "axes": {
                        "workload.injection_rate": [0.05, 0.1],
                        "workload.seed": [1, 2],
                    },
                }
            )
        )
        camp = str(tmp_path / "camp")
        rc = main(["campaign", str(spec), "--dir", camp, "--json"])
        assert rc == 0
        env = json.loads(capsys.readouterr().out)
        rows = env["result"]["rows"]
        assert len(rows) == 4
        assert all(r["error"] is None for r in rows)
        rates = {r["config"]["workload"]["injection_rate"] for r in rows}
        assert rates == {0.05, 0.1}

    def test_failed_variant_exits_1(self, capsys, tmp_path):
        import json

        spec = tmp_path / "bad.json"
        spec.write_text(
            json.dumps(
                {
                    "variants": [
                        {
                            "name": "bad",
                            "config": {
                                "workload": {"pattern": "no_such_pattern"}
                            },
                        }
                    ]
                }
            )
        )
        rc = main(
            [
                "campaign", str(spec),
                "--dir", str(tmp_path / "camp"),
                "--no-lint", "--json",
            ]
        )
        assert rc == 1
        env = json.loads(capsys.readouterr().out)
        assert "no_such_pattern" in env["result"]["rows"][0]["error"]
