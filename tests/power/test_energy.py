"""Tests for the per-operation energy model."""

import pytest

from repro.power.energy import DEFAULT_EVENT_ENERGY_PJ, EnergyModel


class TestEnergyArithmetic:
    def test_total_energy(self):
        model = EnergyModel(event_energy_pj={"link": 2.0, "xbar": 1.0})
        assert model.energy_pj({"link": 10, "xbar": 5}) == 25.0
        assert model.energy_nj({"link": 10, "xbar": 5}) == pytest.approx(0.025)

    def test_energy_per_packet(self):
        model = EnergyModel(event_energy_pj={"link": 2.0})
        assert model.energy_per_packet_nj({"link": 1000}, packets=4) == pytest.approx(
            0.5
        )

    def test_zero_packets_is_zero(self):
        assert EnergyModel().energy_per_packet_nj({"link": 100}, 0) == 0.0

    def test_unknown_event_raises(self):
        with pytest.raises(KeyError):
            EnergyModel().energy_pj({"warp_drive": 1})

    def test_leakage(self):
        model = EnergyModel(leakage_pj_per_router_cycle=0.5)
        assert model.leakage_nj(routers=64, cycles=1000) == pytest.approx(32.0)

    def test_breakdown_sums_to_total(self):
        model = EnergyModel()
        events = {"link": 10, "xbar": 4, "buffer_write": 7}
        breakdown = model.breakdown_pj(events)
        assert sum(breakdown.values()) == pytest.approx(model.energy_pj(events))


class TestDefaultCoefficients:
    def test_all_simulator_events_have_coefficients(self):
        # Every energy_event() name used in the code base must be priced.
        expected = {
            "buffer_write",
            "buffer_read",
            "rt_op",
            "va_grant",
            "sa_grant",
            "xbar",
            "link",
            "local_link",
            "retx_write",
            "retx_read",
            "nack",
            "credit",
            "probe",
            "ac_check",
        }
        assert expected <= set(DEFAULT_EVENT_ENERGY_PJ)

    def test_coefficients_positive(self):
        assert all(v > 0 for v in DEFAULT_EVENT_ENERGY_PJ.values())

    def test_paper_band_for_average_packet(self):
        """A 4-flit packet over the 8x8 average path must land in the
        sub-nanojoule band of Figures 7/13(b)."""
        model = EnergyModel()
        hops = 6.33  # 5.33 mesh hops + ejection
        flits = 4
        per_flit_hop = {
            "buffer_write": 1,
            "buffer_read": 1,
            "sa_grant": 1,
            "xbar": 1,
            "link": 1,
            "retx_write": 1,
            "credit": 1,
        }
        events = {k: int(v * flits * hops) for k, v in per_flit_hop.items()}
        energy = model.energy_per_packet_nj(events, 1)
        assert 0.05 < energy < 1.0
