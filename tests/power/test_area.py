"""Tests for the structural area/power model behind Table 1."""

import pytest

from repro.config import (
    PAPER_AC_AREA_MM2,
    PAPER_AC_POWER_MW,
    PAPER_ROUTER_AREA_MM2,
    PAPER_ROUTER_POWER_MW,
)
from repro.power.area import (
    AreaModel,
    GateInventory,
    ac_unit_inventory,
    router_inventory,
)


class TestInventories:
    def test_router_inventory_positive(self):
        inv = router_inventory()
        assert inv.storage_bits > 0 and inv.gates > 0

    def test_buffers_dominate_router_storage(self):
        inv = router_inventory()
        # 5 ports x 4 VCs x 4 flits x 64 bits of input buffering alone.
        assert inv.storage_bits > 5 * 4 * 4 * 64

    def test_ac_is_combinational_dominated(self):
        inv = ac_unit_inventory()
        assert inv.gates > inv.storage_bits

    def test_ac_grows_superlinearly_in_vcs(self):
        # The pairwise duplicate-comparison network is ~quadratic in PV.
        g2 = ac_unit_inventory(num_vcs=2).gates
        g4 = ac_unit_inventory(num_vcs=4).gates
        g8 = ac_unit_inventory(num_vcs=8).gates
        assert (g8 - g4) > (g4 - g2)

    def test_inventory_addition(self):
        total = GateInventory(10, 20) + GateInventory(1, 2)
        assert (total.storage_bits, total.gates) == (11, 22)

    def test_retx_buffers_excludable(self):
        with_retx = router_inventory(include_retx_buffers=True)
        without = router_inventory(include_retx_buffers=False)
        assert with_retx.storage_bits > without.storage_bits


class TestCalibration:
    def test_reproduces_table1_exactly(self):
        model = AreaModel()
        data = model.table1()
        assert data["router_power_mw"] == pytest.approx(PAPER_ROUTER_POWER_MW, rel=1e-6)
        assert data["router_area_mm2"] == pytest.approx(PAPER_ROUTER_AREA_MM2, rel=1e-6)
        assert data["ac_power_mw"] == pytest.approx(PAPER_AC_POWER_MW, rel=1e-6)
        assert data["ac_area_mm2"] == pytest.approx(PAPER_AC_AREA_MM2, rel=1e-6)

    def test_paper_overhead_percentages(self):
        data = AreaModel().table1()
        assert data["ac_power_overhead_pct"] == pytest.approx(1.69, abs=0.02)
        assert data["ac_area_overhead_pct"] == pytest.approx(1.19, abs=0.02)

    def test_coefficients_physically_sensible_for_90nm(self):
        model = AreaModel()
        # A buffered bit (FF + muxing) lands in tens of um^2; a gate in
        # single-digit um^2.
        assert 1.0 < model.area_per_bit_um2 < 100.0
        assert 0.1 < model.area_per_gate_um2 < 10.0

    def test_overhead_stays_small_at_paper_scale_configs(self):
        model = AreaModel()
        for vcs in (2, 3, 4):
            data = model.table1(num_vcs=vcs)
            assert data["ac_area_overhead_pct"] < 3.0
            assert data["ac_power_overhead_pct"] < 3.0

    def test_area_scales_with_flit_width(self):
        model = AreaModel()
        narrow = model.area_mm2(router_inventory(flit_bits=32))
        wide = model.area_mm2(router_inventory(flit_bits=128))
        assert wide > 2 * narrow
