"""Tests for the ASCII chart/table renderer."""

import pytest

from repro.report.charts import (
    AsciiChart,
    render_comparison_table,
    render_series,
)


class TestAsciiChart:
    def test_plot_and_render(self):
        chart = AsciiChart(width=20, height=5)
        chart.plot(0, 0, "*")
        chart.plot(19, 4, "o")
        rows = chart.render()
        assert rows[4][0] == "*"  # row 0 is the bottom
        assert rows[0][19] == "o"

    def test_out_of_canvas_clipped(self):
        chart = AsciiChart(width=20, height=5)
        chart.plot(100, 100, "*")  # must not raise
        assert all(set(r) <= {" "} for r in chart.render())

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            AsciiChart(width=2, height=2)


class TestRenderSeries:
    def test_contains_title_legend_and_ticks(self):
        out = render_series(
            "My Chart", [1, 2, 3], {"a": [1.0, 5.0, 3.0], "b": [2.0, 2.0, 2.0]}
        )
        assert "My Chart" in out
        assert "*=a" in out and "o=b" in out
        assert "5" in out and "1" in out  # y ticks

    def test_log_x(self):
        out = render_series(
            "log", [1e-5, 1e-3, 1e-1], {"s": [1.0, 2.0, 3.0]}, log_x=True
        )
        assert "(log x)" in out

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            render_series("bad", [0.0, 1.0], {"s": [1.0, 2.0]}, log_x=True)

    def test_flat_series_does_not_crash(self):
        out = render_series("flat", [1, 2], {"s": [5.0, 5.0]})
        assert "flat" in out

    def test_single_point(self):
        out = render_series("pt", [1], {"s": [3.0]})
        assert "pt" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            render_series("t", [1, 2], {})
        with pytest.raises(ValueError):
            render_series("t", [1, 2], {"a": [1.0]})
        with pytest.raises(ValueError):
            render_series("t", [], {"a": []})

    def test_monotone_series_rises_left_to_right(self):
        out = render_series("rise", [1, 2, 3, 4], {"s": [1.0, 2.0, 3.0, 4.0]},
                            width=40, height=8)
        lines = [l.split("|", 1)[1] for l in out.splitlines() if "|" in l]
        top_line = next(l for l in lines if "*" in l)  # series glyph is '*'
        bottom_line = next(l for l in reversed(lines) if "*" in l)
        assert top_line.rindex("*") > bottom_line.index("*")


class TestComparisonTable:
    def test_alignment_and_content(self):
        out = render_comparison_table(
            ["name", "value"], [["hbh", 22.37], ["e2e", 823.9]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "hbh" in out and "823.9" in out

    def test_float_formatting(self):
        out = render_comparison_table(["v"], [[0.123456]])
        assert "0.1235" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            render_comparison_table([], [])
        with pytest.raises(ValueError):
            render_comparison_table(["a", "b"], [["only-one"]])
