"""Tests for the batch-means confidence intervals."""

import random

import pytest

from repro.stats.confidence import (
    ConfidenceInterval,
    batch_means_interval,
    required_samples_estimate,
)


class TestBatchMeans:
    def test_constant_series_zero_width(self):
        ci = batch_means_interval([5.0] * 100)
        assert ci.mean == 5.0
        assert ci.half_width == 0.0
        assert ci.low == ci.high == 5.0

    def test_interval_covers_true_mean(self):
        rng = random.Random(3)
        hits = 0
        for trial in range(40):
            samples = [rng.gauss(10.0, 2.0) for _ in range(400)]
            ci = batch_means_interval(samples)
            if ci.low <= 10.0 <= ci.high:
                hits += 1
        # 95% nominal coverage; allow generous slack for 40 trials.
        assert hits >= 33

    def test_more_samples_tighter_interval(self):
        rng = random.Random(5)
        small = batch_means_interval([rng.gauss(0, 1) for _ in range(200)])
        rng = random.Random(5)
        large = batch_means_interval([rng.gauss(0, 1) for _ in range(5000)])
        assert large.half_width < small.half_width

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_means_interval([1.0] * 100, batches=1)
        with pytest.raises(ValueError):
            batch_means_interval([1.0, 2.0], batches=10)

    def test_str(self):
        text = str(batch_means_interval([1.0, 2.0] * 20))
        assert "±" in text and "batches" in text


class TestRequiredSamples:
    def test_already_precise(self):
        samples = [10.0 + 0.001 * (i % 2) for i in range(200)]
        assert required_samples_estimate(samples, 0.5) == 200

    def test_extrapolates_quadratically(self):
        rng = random.Random(7)
        samples = [rng.gauss(10, 3) for _ in range(200)]
        ci = batch_means_interval(samples)
        target = ci.relative_half_width / 2
        needed = required_samples_estimate(samples, target)
        assert needed == pytest.approx(800, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            required_samples_estimate([1.0] * 100, 0.0)


class TestIntegrationWithSimulator:
    def test_latency_interval_from_a_run(self):
        from repro.config import NoCConfig, SimulationConfig, WorkloadConfig
        from repro.noc.simulator import Simulator

        config = SimulationConfig(
            noc=NoCConfig(width=4, height=4),
            workload=WorkloadConfig(
                injection_rate=0.2, num_messages=400, warmup_messages=80
            ),
        )
        sim = Simulator(config)
        sim.network.stats.latency.keep_samples = True
        result = sim.run()
        ci = batch_means_interval(sim.network.stats.latency.samples)
        assert ci.low <= result.avg_latency <= ci.high
        # At this scale the latency estimate is already reasonably tight.
        assert ci.relative_half_width < 0.25
