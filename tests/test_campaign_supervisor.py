"""The supervised campaign runner: timeouts, crash isolation, resume.

These tests use real worker processes (the supervisor's whole point is
that SIGKILL-level failures cannot wedge it), so hang detection is
exercised with configs whose natural runtime is minutes against
sub-second watchdogs, and progress-despite-timeouts is calibrated against
the machine's measured simulation speed instead of hard-coded workloads.
"""

import os
import time

import pytest

from repro.campaign import run_campaign
from repro.checkpoint import save_checkpoint
from repro.config import NoCConfig, SimulationConfig, WorkloadConfig
from repro.noc.simulator import Simulator


def _small(**workload_kw):
    kw = dict(
        num_messages=120,
        warmup_messages=20,
        injection_rate=0.1,
        seed=3,
    )
    kw.update(workload_kw)
    return SimulationConfig(
        noc=NoCConfig(width=3, height=3), workload=WorkloadConfig(**kw)
    )


def _endless():
    """A config whose natural runtime is minutes — watchdog fodder."""
    return SimulationConfig(
        noc=NoCConfig(width=8, height=8),
        workload=WorkloadConfig(
            num_messages=50_000_000,
            warmup_messages=100,
            injection_rate=0.45,
            max_cycles=500_000_000,
        ),
    )


def _crashing():
    """Constructors accept it; the Simulator rejects the pattern at start."""
    return SimulationConfig(
        noc=NoCConfig(width=3, height=3),
        workload=WorkloadConfig(
            pattern="no_such_pattern", num_messages=50, warmup_messages=5
        ),
    )


class TestSupervisedBasics:
    def test_clean_run_matches_in_process_runner(self):
        config = _small()
        [legacy] = run_campaign([("v", config)])
        [supervised] = run_campaign([("v", config)], timeout=120.0)
        assert supervised.error is None
        assert supervised.avg_latency == legacy.avg_latency
        assert supervised.counters == legacy.counters
        assert supervised.metadata["attempts"] == 1
        assert supervised.metadata["resumed_from_cycle"] is None

    def test_crashing_variant_isolated(self):
        rows = run_campaign(
            [("bad", _crashing()), ("good", _small())],
            timeout=120.0,
            processes=2,
            lint=False,
        )
        by_name = {r.name: r for r in rows}
        assert by_name["bad"].failed
        assert "no_such_pattern" in by_name["bad"].error
        assert by_name["bad"].metadata["resumed_from_cycle"] is None
        assert not by_name["good"].failed

    def test_validation(self):
        with pytest.raises(ValueError, match="timeout"):
            run_campaign([("v", _small())], timeout=0.0)
        with pytest.raises(ValueError, match="checkpoint_interval"):
            run_campaign(
                [("v", _small())], checkpoint_dir="x", checkpoint_interval=0
            )


class TestTimeout:
    def test_hung_variant_killed_and_marked(self):
        """A variant that would run for minutes comes back as a failed
        row with error="timeout" in roughly the watchdog interval, and
        healthy variants sharing the pool still complete."""
        start = time.monotonic()
        rows = run_campaign(
            [("hang", _endless()), ("ok", _small())],
            processes=2,
            timeout=1.0,
            lint=False,
        )
        elapsed = time.monotonic() - start
        by_name = {r.name: r for r in rows}
        assert by_name["hang"].failed
        assert by_name["hang"].error == "timeout"
        assert by_name["hang"].metadata["attempts"] == 1
        assert not by_name["ok"].failed
        assert elapsed < 30.0  # killed, not joined to completion

    def test_timeout_with_checkpoints_reports_last_durable_cycle(
        self, tmp_path
    ):
        rows = run_campaign(
            [("hang", _endless())],
            timeout=3.0,
            checkpoint_dir=str(tmp_path),
            checkpoint_interval=25,
            lint=False,
        )
        [row] = rows
        assert row.error == "timeout"
        # An 8x8 saturation run crosses cycle 25 within milliseconds, so
        # at least one checkpoint landed before the kill.
        assert row.metadata["last_checkpoint_cycle"] >= 25
        assert os.path.exists(tmp_path / "variant_0000.ckpt")


class TestResumeOnRetry:
    def test_retry_resumes_from_existing_checkpoint(self, tmp_path):
        """A checkpoint left behind by a killed attempt is picked up by
        the next attempt, which finishes with the same metrics as an
        uninterrupted run of the same config."""
        config = _small()
        [golden] = run_campaign([("v", config)])
        ckpt = tmp_path / "variant_0000.ckpt"
        sim = Simulator(
            config.replace(checkpoint_interval=50, checkpoint_path=str(ckpt))
        )
        sim.run_to_cycle(60)
        save_checkpoint(sim, ckpt)  # what a killed attempt leaves behind
        del sim
        [row] = run_campaign(
            [("v", config)],
            checkpoint_dir=str(tmp_path),
            checkpoint_interval=50,
        )
        assert row.error is None
        assert row.metadata["resumed_from_cycle"] == 60
        assert row.avg_latency == golden.avg_latency
        assert row.packets_delivered == golden.packets_delivered
        assert not ckpt.exists()  # cleaned up after success

    def test_killed_attempts_accumulate_progress_to_completion(
        self, tmp_path
    ):
        """The headline behaviour: a watchdog window too short for the
        whole run still converges, because each attempt resumes from the
        last attempt's checkpoint instead of cycle 0.  The workload is
        calibrated to ~6 timeout windows on this machine."""
        probe_config = _small(num_messages=10_000_000, max_cycles=600)
        t0 = time.monotonic()
        probe = Simulator(probe_config)
        probe.run()
        cps = 600 / max(time.monotonic() - t0, 1e-6)
        timeout = 0.8
        total_cycles = max(int(cps * timeout * 6), 1200)
        config = _small(
            num_messages=10_000_000, max_cycles=total_cycles
        )
        [row] = run_campaign(
            [("long", config)],
            timeout=timeout,
            retries=40,
            checkpoint_dir=str(tmp_path),
            checkpoint_interval=max(total_cycles // 50, 1),
            lint=False,
        )
        assert row.error is None, row.error
        assert row.metadata["attempts"] > 1
        assert row.metadata["resumed_from_cycle"] > 0
        # And the stitched-together run equals the uninterrupted one.
        [golden] = run_campaign([("long", config)], lint=False)
        assert row.avg_latency == golden.avg_latency
        assert row.packets_delivered == golden.packets_delivered


class TestLegacyRetriesFix:
    def test_attempts_recorded_in_metadata(self):
        rows = run_campaign(
            [("bad", _crashing())], retries=2, lint=False
        )
        assert rows[0].failed
        assert rows[0].metadata["attempts"] == 3

    def test_clean_run_single_attempt(self):
        rows = run_campaign([("v", _small())], retries=5)
        assert rows[0].metadata["attempts"] == 1


class TestAttemptErrors:
    def test_failed_attempts_recorded_in_order_legacy(self):
        [row] = run_campaign([("bad", _crashing())], retries=2, lint=False)
        errors = row.metadata["attempt_errors"]
        assert len(errors) == 3
        assert all("no_such_pattern" in e for e in errors)
        assert row.error == errors[-1]

    def test_failed_attempts_recorded_in_order_supervised(self):
        [row] = run_campaign(
            [("bad", _crashing())], retries=2, timeout=120.0, lint=False
        )
        errors = row.metadata["attempt_errors"]
        assert len(errors) == 3
        assert all("no_such_pattern" in e for e in errors)
        assert row.error == errors[-1]

    def test_clean_rows_omit_the_key(self):
        [legacy] = run_campaign([("v", _small())], retries=3)
        [supervised] = run_campaign([("v", _small())], timeout=120.0)
        assert "attempt_errors" not in legacy.metadata
        assert "attempt_errors" not in supervised.metadata


class TestCheckpointDiscard:
    """A corrupt/truncated checkpoint between attempts must not fail the
    variant: the retry discards it, restarts from cycle 0 and records the
    discard in metadata — no CheckpointError escapes."""

    def _run(self, tmp_path, config):
        return run_campaign(
            [("v", config)],
            checkpoint_dir=str(tmp_path),
            checkpoint_interval=50,
        )

    def test_truncated_checkpoint_restarts_from_zero(self, tmp_path):
        config = _small()
        [golden] = run_campaign([("v", config)])
        ckpt = tmp_path / "variant_0000.ckpt"
        sim = Simulator(
            config.replace(checkpoint_interval=50, checkpoint_path=str(ckpt))
        )
        sim.run_to_cycle(60)
        save_checkpoint(sim, ckpt)
        del sim
        with open(ckpt, "r+b") as fh:  # a crash mid-write tears the file
            fh.truncate(40)
        [row] = self._run(tmp_path, config)
        assert row.error is None
        assert row.metadata["checkpoint_discarded"]
        assert row.metadata["resumed_from_cycle"] is None  # cycle-0 restart
        assert row.metadata["attempts"] == 1
        assert row.avg_latency == golden.avg_latency
        assert row.packets_delivered == golden.packets_delivered
        assert not ckpt.exists()

    def test_garbage_checkpoint_restarts_from_zero(self, tmp_path):
        config = _small()
        ckpt = tmp_path / "variant_0000.ckpt"
        ckpt.write_bytes(b"not a checkpoint at all" * 4)
        [row] = self._run(tmp_path, config)
        assert row.error is None
        assert row.metadata["checkpoint_discarded"]
        assert row.metadata["resumed_from_cycle"] is None
