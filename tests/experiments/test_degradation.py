"""Smoke tests for the graceful-degradation campaign (``repro degrade``)."""

from repro.experiments.degradation import (
    DegradationPoint,
    _schedule_for_level,
    mesh_links,
    run_degradation,
)
from repro.types import Direction


class TestMeshLinks:
    def test_directed_link_count(self):
        # 2*(2*w*h - w - h) directed mesh links.
        assert len(mesh_links(4, 4)) == 48
        assert len(mesh_links(8, 8)) == 224

    def test_no_local_or_dangling_links(self):
        links = mesh_links(3, 3)
        assert len(set(links)) == len(links)
        assert all(d is not Direction.LOCAL for _, d in links)


class TestScheduleForLevel:
    def test_level_zero_is_empty(self):
        order = [[link] for link in mesh_links(4, 4)]
        assert not _schedule_for_level(order, 0, 500)

    def test_last_kill_lands_late(self):
        order = [[link] for link in mesh_links(4, 4)]
        schedule = _schedule_for_level(order, 3, late_cycle=500)
        cycles = [f.cycle for f in schedule.sorted_by_cycle()]
        assert cycles == [0, 0, 500]
        assert all(f.kind == "link" for f in schedule.sorted_by_cycle())

    def test_group_dies_together(self):
        # A pillar-style group: every member shares the late cycle.
        order = [[(0, Direction.UP), (9, Direction.DOWN)],
                 [(1, Direction.UP), (10, Direction.DOWN)]]
        schedule = _schedule_for_level(order, 2, late_cycle=400)
        cycles = [f.cycle for f in schedule.sorted_by_cycle()]
        assert cycles == [0, 0, 400, 400]


class TestRunDegradation:
    def test_curve_structure(self):
        points = run_degradation(
            width=4,
            height=4,
            max_kills=3,
            injection_rate=0.1,
            inject_cycles=300,
            seed=11,
            invariant_checks=True,
        )
        assert len(points) == 4
        assert [p.kills for p in points] == [0, 1, 2, 3]
        for p in points:
            assert isinstance(p, DegradationPoint)
            assert not p.hit_cycle_limit
            assert 0.0 <= p.delivery_rate <= 1.0
            assert 0.0 < p.reachable_fraction <= 1.0
            assert p.packets_delivered + p.packets_lost == p.packets_injected
            assert p.avg_latency > 0

        healthy = points[0]
        assert healthy.delivery_rate == 1.0
        assert healthy.latency_inflation == 1.0
        assert healthy.reconvergence_cycles == 0

        # Degradation is graceful: a handful of dead links in a 4x4 mesh
        # must not collapse delivery.
        for p in points[1:]:
            assert p.delivery_rate > 0.9
            assert p.latency_inflation >= 0.9
