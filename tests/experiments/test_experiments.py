"""Smoke tests: every experiment runner produces the structure its figure
needs, at tiny scales (the benchmarks run the real scales)."""

import pytest

from repro.experiments.figure5 import run_figure5
from repro.experiments.figure6_7 import run_figure6_7
from repro.experiments.figure8_9 import run_figure8_9
from repro.experiments.figure13 import run_figure13
from repro.experiments.table1 import run_table1
from repro.experiments.deadlock_demo import run_deadlock_demo


class TestFigure5:
    def test_structure_and_shape(self):
        results = run_figure5(
            error_rates=(1e-4, 5e-2), num_messages=250, warmup=50
        )
        assert set(results) == {"hbh", "e2e", "fec"}
        for series in results.values():
            assert [p.error_rate for p in series] == [1e-4, 5e-2]
        # The figure's headline: E2E deteriorates, HBH does not.
        hbh_growth = results["hbh"][1].avg_latency / results["hbh"][0].avg_latency
        e2e_growth = results["e2e"][1].avg_latency / results["e2e"][0].avg_latency
        assert e2e_growth > hbh_growth
        assert hbh_growth < 1.3


class TestFigure6And7:
    def test_all_patterns_and_flatness(self):
        results = run_figure6_7(
            error_rates=(1e-4, 5e-2), num_messages=250, warmup=50
        )
        assert set(results) == {"NR", "BC", "TN"}
        for label, series in results.items():
            lo, hi = series[0], series[1]
            assert hi.avg_latency < 1.4 * lo.avg_latency, label
            assert hi.energy_per_packet_nj < 1.4 * max(
                lo.energy_per_packet_nj, 1e-9
            ), label
            assert hi.retransmission_rounds > lo.retransmission_rounds


class TestFigure8And9:
    def test_utilization_shapes(self):
        results = run_figure8_9(
            injection_rates=(0.1, 0.7), cycles=250, measure_from=60
        )
        assert set(results) == {"AD", "DT"}
        for label, series in results.items():
            low, high = series
            assert high.tx_utilization > low.tx_utilization, label
            assert 0.0 <= high.retx_utilization <= 1.0
            # The Section 3.2 observation: even at saturation the
            # retransmission buffers stay mostly idle.
            assert high.retx_utilization < 0.5, label


class TestFigure13:
    def test_series_and_ordering(self):
        results = run_figure13(
            error_rates=(1e-3, 1e-2), num_messages=250, warmup=50
        )
        assert set(results) == {"LINK-HBH", "RT-Logic", "SA-Logic"}
        at_high = {label: series[-1] for label, series in results.items()}
        # Figure 13(a) ordering: SA > LINK > RT corrected errors.
        assert (
            at_high["SA-Logic"].errors_corrected
            > at_high["RT-Logic"].errors_corrected
        )
        assert (
            at_high["LINK-HBH"].errors_corrected
            > at_high["RT-Logic"].errors_corrected
        )
        # No scenario loses packets: every error was corrected.
        for point in at_high.values():
            assert point.packets_lost == 0


class TestTable1:
    def test_paper_row_present(self):
        rows = run_table1()
        paper = next(r for r in rows if (r.num_ports, r.num_vcs) == (5, 4))
        assert paper.router_power_mw == pytest.approx(119.55, rel=1e-6)
        assert paper.ac_area_overhead_pct == pytest.approx(1.19, abs=0.02)


class TestDeadlockDemo:
    def test_demo_contract(self):
        outcome = run_deadlock_demo(recovery=True)
        assert outcome.deadlock_broken and outcome.satisfies_eq1
