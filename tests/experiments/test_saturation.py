"""Smoke tests for the saturation characterization experiment."""

from repro.experiments.saturation import SaturationCurve, LoadPoint, run_saturation
from repro.types import RoutingAlgorithm


class TestSaturationCurve:
    def _curve(self, latencies):
        points = [
            LoadPoint(
                injection_rate=0.1 * (i + 1),
                avg_latency=lat,
                throughput=0.1 * (i + 1),
                delivered=100,
                hit_cycle_limit=False,
            )
            for i, lat in enumerate(latencies)
        ]
        return SaturationCurve("xy", points)

    def test_saturation_point_detection(self):
        curve = self._curve([10.0, 11.0, 12.0, 40.0, 90.0])
        assert curve.saturation_rate(factor=3.0) == 0.4

    def test_never_saturates(self):
        curve = self._curve([10.0, 11.0, 12.0])
        assert curve.saturation_rate() is None

    def test_peak_throughput(self):
        curve = self._curve([10.0, 11.0])
        assert curve.peak_throughput() == 0.2


class TestRunSaturation:
    def test_small_sweep_structure(self):
        curves = run_saturation(
            rates=(0.1, 0.4),
            algorithms=(RoutingAlgorithm.XY,),
            num_messages=150,
        )
        assert set(curves) == {"xy"}
        points = curves["xy"].points
        assert [p.injection_rate for p in points] == [0.1, 0.4]
        assert points[1].avg_latency > points[0].avg_latency
