"""The checkpoint <-> backend contract (docs/CHECKPOINTING.md).

A checkpoint written by one backend resumes on that backend, bit-for-bit.
Cross-backend resume is deliberately unsupported: the two backends snapshot
different state shapes (object graph vs. packed int64 arrays), and a silent
conversion could not be audited against the bit-for-bit guarantee.  The
contract this module pins:

* same-backend interrupt/resume on ``backend="batched"`` reproduces the
  uninterrupted run exactly (result dict, counters, NDJSON telemetry);
* ``load_checkpoint(path, backend=...)`` with a backend that does not match
  the checkpoint header raises :class:`CheckpointError` *before* unpickling,
  in both directions;
* a default (no ``backend``) load resumes on whatever backend the header
  records — the file is self-describing.
"""

import pytest

from repro import api
from repro.checkpoint import (
    CheckpointError,
    load_checkpoint,
    read_checkpoint_header,
    save_checkpoint,
)
from repro.noc.simulator import Simulator
from repro.serialization import result_to_dict
from repro.telemetry.export import write_ndjson


def _cfg(backend, **kw):
    base = dict(
        width=4,
        height=4,
        rate=0.1,
        messages=150,
        warmup=20,
        seed=42,
        telemetry=True,
        metrics_interval=20,
    )
    base.update(kw)
    return api.load_config(backend=backend, **base)


def _observables(result):
    out = result_to_dict(result)
    out.pop("config")
    return out


@pytest.fixture
def batched_ckpt(tmp_path):
    """A mid-run checkpoint written by the batched backend."""
    sim = Simulator(_cfg("batched"))
    sim.run_to_cycle(120)
    path = tmp_path / "batched.ckpt"
    save_checkpoint(sim, path)
    return path


class TestSameBackendResume:
    def test_batched_midpoint_resume_is_bit_for_bit(self, batched_ckpt, tmp_path):
        golden = Simulator(_cfg("batched")).run()
        resumed_sim = load_checkpoint(batched_ckpt)
        assert resumed_sim.network.kernel is not None  # kernel survived pickling
        resumed = resumed_sim.run()
        assert _observables(resumed) == _observables(golden)
        golden_path = tmp_path / "golden.ndjson"
        resumed_path = tmp_path / "resumed.ndjson"
        write_ndjson(golden.telemetry, golden_path)
        write_ndjson(resumed.telemetry, resumed_path)
        assert golden_path.read_bytes() == resumed_path.read_bytes()

    def test_batched_resume_matches_object_run(self, batched_ckpt):
        """Transitively: batched-interrupt-resume == straight object run."""
        object_golden = Simulator(_cfg("object")).run()
        resumed = load_checkpoint(batched_ckpt).run()
        assert _observables(resumed) == _observables(object_golden)


class TestCrossBackendGuard:
    def test_header_records_the_backend_without_unpickling(self, batched_ckpt):
        header = read_checkpoint_header(batched_ckpt)
        assert header["config"]["backend"] == "batched"

    def test_object_resume_of_batched_checkpoint_raises(self, batched_ckpt):
        with pytest.raises(CheckpointError, match="cross-backend"):
            load_checkpoint(batched_ckpt, backend="object")

    def test_batched_resume_of_object_checkpoint_raises(self, tmp_path):
        sim = Simulator(_cfg("object"))
        sim.run_to_cycle(120)
        path = tmp_path / "object.ckpt"
        save_checkpoint(sim, path)
        with pytest.raises(CheckpointError, match="cross-backend"):
            load_checkpoint(path, backend="batched")

    def test_matching_assertion_passes(self, batched_ckpt):
        sim = load_checkpoint(batched_ckpt, backend="batched")
        assert sim.network.kernel is not None

    def test_api_resume_forwards_the_backend(self, batched_ckpt):
        with pytest.raises(CheckpointError, match="cross-backend"):
            api.resume(batched_ckpt, backend="object")


class TestSelfDescribingDefault:
    def test_default_load_resumes_on_the_recorded_backend(self, batched_ckpt):
        sim = load_checkpoint(batched_ckpt)
        assert sim.config.backend == "batched"
        assert sim.network.kernel is not None

    def test_out_of_domain_batched_checkpoint_resumes_on_fallback(self, tmp_path):
        """A config that requested batched but fell back (out of domain)
        checkpoints and resumes as the object loop it actually ran."""
        cfg = _cfg("batched", link_error_rate=0.01, telemetry=False)
        sim = Simulator(cfg)
        assert sim.network.kernel is None  # fell back at construction
        sim.run_to_cycle(100)
        path = tmp_path / "fallback.ckpt"
        save_checkpoint(sim, path)
        resumed = load_checkpoint(path, backend="batched")  # header matches
        assert resumed.network.kernel is None
        golden = Simulator(_cfg("batched", link_error_rate=0.01, telemetry=False)).run()
        assert _observables(resumed.run()) == _observables(golden)
