"""Tests for the bit-level payload cross-validation harness."""

import pytest

from repro.coding.hamming import DecodeStatus
from repro.coding.payload_check import PayloadChecker
from repro.noc.flit import Flit
from repro.types import Corruption, FlitType


def make_flit(pid=3, seq=1):
    return Flit(pid, seq, FlitType.BODY, 0, 1)


class TestEncodeVerify:
    def test_clean_roundtrip(self):
        checker = PayloadChecker()
        flit = make_flit()
        checker.encode_flit(flit)
        assert checker.verify_flit(flit)
        assert checker.mismatches == 0
        assert checker.flits_encoded == 1 and checker.flits_checked == 1

    def test_distinct_flits_distinct_payloads(self):
        checker = PayloadChecker()
        a, b = make_flit(seq=0), make_flit(seq=1)
        checker.encode_flit(a)
        checker.encode_flit(b)
        assert a.payload != b.payload


class TestCorruptionConsistency:
    def test_single_upset_decodes_corrected(self):
        checker = PayloadChecker()
        flit = make_flit()
        checker.encode_flit(flit)
        checker.corrupt_payload(flit, Corruption.SINGLE)
        flit.corrupt(Corruption.SINGLE)
        assert checker.codec.decode(flit.payload).status is DecodeStatus.CORRECTED
        assert checker.verify_flit(flit)

    def test_multi_upset_decodes_detected(self):
        checker = PayloadChecker()
        flit = make_flit()
        checker.encode_flit(flit)
        checker.corrupt_payload(flit, Corruption.MULTI)
        flit.corrupt(Corruption.MULTI)
        assert checker.codec.decode(flit.payload).status is DecodeStatus.DETECTED
        assert checker.verify_flit(flit)

    def test_two_singles_compose_into_double(self):
        """Two independent single-bit upsets on one flit are a real double
        error; the symbolic escalation SINGLE + SINGLE -> MULTI must match
        what the decoder sees."""
        checker = PayloadChecker()
        flit = make_flit()
        checker.encode_flit(flit)
        for _ in range(2):
            checker.corrupt_payload(flit, Corruption.SINGLE)
            flit.corrupt(Corruption.SINGLE)
        assert flit.corruption is Corruption.MULTI
        assert checker.codec.decode(flit.payload).status is DecodeStatus.DETECTED
        assert checker.verify_flit(flit)

    def test_accumulation_beyond_double_is_capped(self):
        checker = PayloadChecker()
        flit = make_flit()
        checker.encode_flit(flit)
        for _ in range(5):
            checker.corrupt_payload(flit, Corruption.MULTI)
            flit.corrupt(Corruption.MULTI)
        assert checker.verify_flit(flit)

    def test_mismatch_is_counted(self):
        checker = PayloadChecker()
        flit = make_flit()
        checker.encode_flit(flit)
        flit.corrupt(Corruption.MULTI)  # tag says corrupt, payload is clean
        assert not checker.verify_flit(flit)
        assert checker.mismatches == 1

    def test_corrected_data_must_match_original(self):
        checker = PayloadChecker()
        flit = make_flit()
        checker.encode_flit(flit)
        # Forge a codeword of the wrong data: decodes OK but wrong word.
        other = make_flit(pid=99, seq=7)
        checker.encode_flit(other)
        flit.payload = other.payload
        assert not checker.verify_flit(flit)


class TestFlitEscalation:
    def test_single_plus_single_is_multi(self):
        flit = make_flit()
        flit.corrupt(Corruption.SINGLE)
        flit.corrupt(Corruption.SINGLE)
        assert flit.corruption is Corruption.MULTI


class TestEndToEndCrossValidation:
    @pytest.mark.parametrize("scheme", ["hbh", "e2e", "fec", "none"])
    def test_no_mismatches_under_error_storm(self, scheme):
        from repro.config import FaultConfig, SimulationConfig, WorkloadConfig, NoCConfig
        from repro.noc.simulator import run_simulation
        from repro.types import LinkProtection

        config = SimulationConfig(
            noc=NoCConfig(width=4, height=4, link_protection=LinkProtection(scheme)),
            faults=FaultConfig.link_only(0.05, multi_bit_fraction=0.4, seed=2),
            workload=WorkloadConfig(
                injection_rate=0.2,
                num_messages=250,
                warmup_messages=50,
                max_cycles=60_000,
            ),
            payload_ecc_check=True,
        )
        result = run_simulation(config)
        assert result.counter("payload_ecc_checks") > 500
        assert result.counter("payload_ecc_mismatches") == 0
