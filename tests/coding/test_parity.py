"""Tests for parity codes and the TMR voter (Section 4.6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.parity import ParityCode, tmr_vote


class TestParityCode:
    def test_even_parity_roundtrip(self):
        code = ParityCode(8)
        for data in (0, 1, 0xFF, 0xA5):
            word = code.encode(data)
            assert code.check(word)
            assert code.extract(word) == data

    def test_odd_parity(self):
        code = ParityCode(4, even=False)
        word = code.encode(0b0000)
        assert code.check(word)
        # Odd parity of zero data means the parity bit must be set.
        assert word >> 4 == 1

    def test_detects_single_bit_error(self):
        code = ParityCode(8)
        word = code.encode(0x5A)
        for bit in range(9):
            assert not code.check(word ^ (1 << bit))

    def test_misses_double_bit_error(self):
        # Documented limitation: parity detects only odd error counts.
        code = ParityCode(8)
        word = code.encode(0x5A)
        assert code.check(word ^ 0b11)

    def test_rejects_oversized(self):
        code = ParityCode(4)
        with pytest.raises(ValueError):
            code.encode(16)
        with pytest.raises(ValueError):
            code.check(1 << 5)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            ParityCode(0)

    @given(data=st.integers(min_value=0, max_value=2**16 - 1))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, data):
        code = ParityCode(16)
        word = code.encode(data)
        assert code.check(word) and code.extract(word) == data


class TestTmrVote:
    def test_masks_any_single_glitch(self):
        for value in (True, False):
            for glitched in range(3):
                samples = [value] * 3
                samples[glitched] = not value
                assert tmr_vote(samples) == value

    def test_unanimous(self):
        assert tmr_vote([True, True, True]) is True
        assert tmr_vote([False, False, False]) is False

    def test_double_glitch_flips(self):
        # TMR's documented limit: two simultaneous upsets win the vote.
        assert tmr_vote([False, False, True]) is False

    def test_requires_three_samples(self):
        with pytest.raises(ValueError):
            tmr_vote([True, False])
