"""Tests for the extended Hamming SEC/DED codec.

The codec is the ground truth behind the simulator's symbolic corruption
classes, so it gets the heaviest verification: exhaustive single/double
error sweeps at small widths plus property-based checks at realistic widths.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.hamming import DecodeStatus, HammingSecDed


class TestConstruction:
    @pytest.mark.parametrize(
        "data_bits,parity_bits",
        [(1, 2), (4, 3), (8, 4), (11, 4), (12, 5), (26, 5), (32, 6), (57, 6), (64, 7)],
    )
    def test_parity_bit_counts(self, data_bits, parity_bits):
        codec = HammingSecDed(data_bits)
        assert codec.parity_bits == parity_bits
        assert codec.codeword_bits == data_bits + parity_bits + 1

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            HammingSecDed(0)

    def test_overhead_bits(self):
        codec = HammingSecDed(64)
        assert codec.overhead_bits == codec.codeword_bits - 64 == 8


class TestRoundTrip:
    def test_exhaustive_8bit_roundtrip(self):
        codec = HammingSecDed(8)
        for data in range(256):
            result = codec.decode(codec.encode(data))
            assert result.status is DecodeStatus.OK
            assert result.data == data

    def test_rejects_oversized_data(self):
        with pytest.raises(ValueError):
            HammingSecDed(8).encode(256)

    def test_rejects_negative_data(self):
        with pytest.raises(ValueError):
            HammingSecDed(8).encode(-1)

    def test_rejects_oversized_codeword(self):
        codec = HammingSecDed(8)
        with pytest.raises(ValueError):
            codec.decode(1 << codec.codeword_bits)


class TestSingleErrorCorrection:
    def test_exhaustive_all_positions_4bit(self):
        codec = HammingSecDed(4)
        for data in range(16):
            word = codec.encode(data)
            for pos in range(1, codec.codeword_bits + 1):
                result = codec.decode(codec.flip_bits(word, (pos,)))
                assert result.status is DecodeStatus.CORRECTED
                assert result.data == data, f"data={data}, flipped pos={pos}"

    def test_overall_parity_bit_error_is_corrected(self):
        codec = HammingSecDed(8)
        word = codec.encode(0xA5)
        flipped = codec.flip_bits(word, (codec.codeword_bits,))
        result = codec.decode(flipped)
        assert result.status is DecodeStatus.CORRECTED
        assert result.data == 0xA5


class TestDoubleErrorDetection:
    def test_exhaustive_all_pairs_4bit(self):
        codec = HammingSecDed(4)
        word = codec.encode(0b1010)
        for p1, p2 in itertools.combinations(range(1, codec.codeword_bits + 1), 2):
            result = codec.decode(codec.flip_bits(word, (p1, p2)))
            assert result.status is DecodeStatus.DETECTED, (p1, p2)

    def test_double_error_never_miscorrects_silently(self):
        """A double error must never decode as OK (that would be silent
        data corruption — exactly what DED exists to prevent)."""
        codec = HammingSecDed(11)
        word = codec.encode(0b101_1100_1010)
        for p1, p2 in itertools.combinations(range(1, codec.codeword_bits + 1), 2):
            assert codec.decode(codec.flip_bits(word, (p1, p2))).status is not (
                DecodeStatus.OK
            )


class TestFlipBits:
    def test_flip_is_involution(self):
        codec = HammingSecDed(16)
        word = codec.encode(0xBEEF)
        assert codec.flip_bits(codec.flip_bits(word, (3, 7)), (3, 7)) == word

    def test_rejects_out_of_range_positions(self):
        codec = HammingSecDed(8)
        word = codec.encode(1)
        with pytest.raises(ValueError):
            codec.flip_bits(word, (0,))
        with pytest.raises(ValueError):
            codec.flip_bits(word, (codec.codeword_bits + 1,))


class TestProperties:
    @given(data=st.integers(min_value=0, max_value=(1 << 64) - 1))
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_64bit(self, data):
        codec = _CODEC64
        result = codec.decode(codec.encode(data))
        assert result.status is DecodeStatus.OK and result.data == data

    @given(
        data=st.integers(min_value=0, max_value=(1 << 64) - 1),
        pos=st.integers(min_value=1, max_value=72),
    )
    @settings(max_examples=150, deadline=None)
    def test_single_error_corrected_64bit(self, data, pos):
        codec = _CODEC64
        pos = min(pos, codec.codeword_bits)
        result = codec.decode(codec.flip_bits(codec.encode(data), (pos,)))
        assert result.status is DecodeStatus.CORRECTED and result.data == data

    @given(
        data=st.integers(min_value=0, max_value=(1 << 32) - 1),
        positions=st.sets(st.integers(min_value=1, max_value=39), min_size=2, max_size=2),
    )
    @settings(max_examples=150, deadline=None)
    def test_double_error_detected_32bit(self, data, positions):
        codec = _CODEC32
        result = codec.decode(codec.flip_bits(codec.encode(data), tuple(positions)))
        assert result.status is DecodeStatus.DETECTED


_CODEC64 = HammingSecDed(64)
_CODEC32 = HammingSecDed(32)


class TestCheckShortcut:
    def test_check_matches_decode_status(self):
        codec = HammingSecDed(8)
        word = codec.encode(0x3C)
        assert codec.check(word) is DecodeStatus.OK
        assert codec.check(codec.flip_bits(word, (2,))) is DecodeStatus.CORRECTED
        assert codec.check(codec.flip_bits(word, (2, 9))) is DecodeStatus.DETECTED
