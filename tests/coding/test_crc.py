"""Tests for the CRC engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.crc import CRC8_ATM, CRC16_CCITT, Crc


class TestKnownVectors:
    def test_crc16_ccitt_check_value(self):
        # Canonical "123456789" check value for CRC-16/CCITT-FALSE.
        assert CRC16_CCITT.compute(b"123456789") == 0x29B1

    def test_crc8_atm_check_value(self):
        # Canonical "123456789" check value for CRC-8 (poly 0x07).
        assert CRC8_ATM.compute(b"123456789") == 0xF4

    def test_empty_message(self):
        assert CRC8_ATM.compute(b"") == 0
        assert CRC16_CCITT.compute(b"") == 0xFFFF


class TestConstruction:
    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            Crc(0, 0x7)
        with pytest.raises(ValueError):
            Crc(65, 0x7)

    def test_rejects_bad_byte(self):
        with pytest.raises(ValueError):
            CRC8_ATM.compute([256])


class TestComputeInt:
    def test_matches_byte_serialization(self):
        value = 0xDEADBEEF
        assert CRC16_CCITT.compute_int(value, 4) == CRC16_CCITT.compute(
            value.to_bytes(4, "big")
        )

    def test_rejects_oversized_value(self):
        with pytest.raises(ValueError):
            CRC8_ATM.compute_int(0x1FF, 1)


class TestErrorDetection:
    def test_verify(self):
        data = b"network-on-chip"
        crc = CRC16_CCITT.compute(data)
        assert CRC16_CCITT.verify(data, crc)
        assert not CRC16_CCITT.verify(b"network-on-chop", crc)

    @given(
        data=st.binary(min_size=1, max_size=32),
        byte_index=st.integers(min_value=0, max_value=31),
        flip=st.integers(min_value=1, max_value=255),
    )
    @settings(max_examples=200, deadline=None)
    def test_detects_any_single_byte_error(self, data, byte_index, flip):
        byte_index %= len(data)
        corrupted = bytearray(data)
        corrupted[byte_index] ^= flip
        assert CRC16_CCITT.compute(data) != CRC16_CCITT.compute(bytes(corrupted))

    @given(data=st.binary(min_size=0, max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_deterministic(self, data):
        assert CRC16_CCITT.compute(data) == CRC16_CCITT.compute(data)
