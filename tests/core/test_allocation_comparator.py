"""Tests for the Allocation Comparator unit (Figure 12).

Each Section 4.1 VA scenario and Section 4.3 SA scenario has a dedicated
test; clean allocations must always pass (the false-positive direction).
"""

from repro.core.allocation_comparator import AllocationComparator

P, V = 5, 4


def ac():
    return AllocationComparator(P, V)


class TestVAChecks:
    def test_clean_grants_pass(self):
        unit = ac()
        grants = {(0, 0): (2, 1), (1, 3): (3, 0)}
        candidates = {(0, 0): [2], (1, 3): [3]}
        reserved = {(p, v): False for p in range(P) for v in range(V)}
        assert unit.check_va(grants, candidates, reserved) == []
        assert unit.va_invalidations == 0

    def test_scenario_1_invalid_vc_id(self):
        unit = ac()
        errors = unit.check_va(
            {(0, 0): (2, V)},  # VC id out of range
            {(0, 0): [2]},
            {},
        )
        assert len(errors) == 1
        assert errors[0].requester == (0, 0)
        assert "invalid" in errors[0].reason

    def test_scenario_2_same_vc_to_two_inputs(self):
        unit = ac()
        errors = unit.check_va(
            {(0, 0): (2, 1), (1, 0): (2, 1)},
            {(0, 0): [2], (1, 0): [2]},
            {},
        )
        flagged = {e.requester for e in errors}
        assert flagged == {(0, 0), (1, 0)}  # both duplicate grants void

    def test_scenario_3_reserved_vc_granted(self):
        unit = ac()
        reserved = {(2, 1): True}
        errors = unit.check_va({(0, 0): (2, 1)}, {(0, 0): [2]}, reserved)
        assert len(errors) == 1
        assert "reserved" in errors[0].reason

    def test_scenario_4a_wrong_vc_same_pc_is_benign(self):
        # The packet still heads in the intended physical direction; the AC
        # has no reason (and no information) to flag it.
        unit = ac()
        errors = unit.check_va({(0, 0): (2, 3)}, {(0, 0): [2]}, {})
        assert errors == []

    def test_scenario_4b_wrong_pc_caught_by_rt_agreement(self):
        unit = ac()
        errors = unit.check_va({(0, 0): (0, 1)}, {(0, 0): [2]}, {})
        assert len(errors) == 1
        assert "disagrees with routing function" in errors[0].reason

    def test_invalid_port_index(self):
        unit = ac()
        errors = unit.check_va({(0, 0): (7, 0)}, {(0, 0): [2]}, {})
        assert len(errors) == 1

    def test_adaptive_candidates_allow_either_port(self):
        unit = ac()
        assert unit.check_va({(0, 0): (1, 0)}, {(0, 0): [1, 2]}, {}) == []
        assert unit.check_va({(0, 0): (2, 0)}, {(0, 0): [1, 2]}, {}) == []

    def test_invalidation_counter_accumulates(self):
        unit = ac()
        unit.check_va({(0, 0): (2, V)}, {(0, 0): [2]}, {})
        unit.check_va({(1, 0): (2, V)}, {(1, 0): [2]}, {})
        assert unit.va_invalidations == 2


class TestSAChecks:
    VA_STATE = {(0, 0): 2, (1, 0): 3, (3, 2): 1}

    def test_clean_grants_pass(self):
        unit = ac()
        grants = [((0, 0), 2), ((1, 0), 3)]
        assert unit.check_sa(grants, self.VA_STATE) == []
        assert unit.sa_invalidations == 0

    def test_case_b_wrong_output_port(self):
        # A data flit directed somewhere other than its packet's wormhole.
        unit = ac()
        errors = unit.check_sa([((0, 0), 3)], self.VA_STATE)
        assert len(errors) == 1
        assert "VA state says 2" in errors[0].reason

    def test_case_c_two_flits_same_output(self):
        unit = ac()
        va_state = {(0, 0): 2, (1, 0): 2}
        errors = unit.check_sa([((0, 0), 2), ((1, 0), 2)], va_state)
        assert {e.requester for e in errors} == {(0, 0), (1, 0)}

    def test_case_d_multicast(self):
        unit = ac()
        errors = unit.check_sa([((0, 0), 2), ((0, 0), 4)], self.VA_STATE)
        # The wrong-port copy fails VA agreement; had both matched, the
        # multicast check would flag them.
        assert errors

    def test_multicast_same_va_port_flagged(self):
        unit = ac()
        va_state = {(0, 0): 2}
        errors = unit.check_sa([((0, 0), 2), ((0, 0), 2)], va_state)
        assert errors  # duplicate output grants from one input

    def test_grant_without_va_allocation(self):
        unit = ac()
        errors = unit.check_sa([((4, 1), 2)], self.VA_STATE)
        assert len(errors) == 1
        assert "unallocated" in errors[0].reason

    def test_invalid_output_port(self):
        unit = ac()
        errors = unit.check_sa([((0, 0), 9)], self.VA_STATE)
        assert len(errors) == 1
        assert "invalid output port" in errors[0].reason

    def test_false_positive_freedom_under_full_load(self):
        # A full, legal crossbar schedule must never be flagged.
        unit = ac()
        va_state = {(p, 0): (p + 1) % P for p in range(P)}
        grants = [((p, 0), (p + 1) % P) for p in range(P)]
        assert unit.check_sa(grants, va_state) == []
