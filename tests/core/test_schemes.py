"""Tests for the link-protection destination policies (HBH / E2E / FEC)."""

import random

import pytest

from repro.core.schemes import (
    DeliveryAction,
    HeaderField,
    apply_header_upset,
    destination_policy,
    pick_header_field,
)
from repro.noc.packet import Packet
from repro.types import Corruption, LinkProtection


def packet_flits(src=3, dst=10, num=4):
    return Packet(1, src=src, dst=dst, num_flits=num, injection_cycle=0).make_flits()


class TestHeaderUpset:
    def test_dst_hit_rewrites_destination(self):
        flits = packet_flits(dst=10)
        head = flits[0]
        apply_header_upset(head, Corruption.SINGLE, HeaderField.DST, 64, random.Random(1))
        assert head.dst != 10
        assert head.true_dst == 10
        assert head.dst_error is Corruption.SINGLE

    def test_src_hit_tags_only(self):
        head = packet_flits()[0]
        apply_header_upset(head, Corruption.MULTI, HeaderField.SRC, 64, random.Random(1))
        assert head.src_error is Corruption.MULTI
        assert head.dst == head.true_dst

    def test_payload_hit_corrupts_flit(self):
        head = packet_flits()[0]
        apply_header_upset(head, Corruption.MULTI, HeaderField.PAYLOAD, 64, random.Random(1))
        assert head.corruption is Corruption.MULTI

    def test_field_distribution(self):
        rng = random.Random(0)
        fields = [pick_header_field(rng) for _ in range(5000)]
        dst_frac = fields.count(HeaderField.DST) / len(fields)
        src_frac = fields.count(HeaderField.SRC) / len(fields)
        assert dst_frac == pytest.approx(0.10, abs=0.02)
        assert src_frac == pytest.approx(0.10, abs=0.02)


class TestHBHPolicy:
    def test_clean_delivery(self):
        flits = packet_flits(dst=10)
        decision = destination_policy(LinkProtection.HBH, 10, flits)
        assert decision.action is DeliveryAction.DELIVER

    def test_residual_corruption_delivered_corrupt(self):
        # Only possible via the give-up path; must be reported, not hidden.
        flits = packet_flits(dst=10)
        flits[2].corrupt(Corruption.MULTI)
        decision = destination_policy(LinkProtection.HBH, 10, flits)
        assert decision.action is DeliveryAction.DELIVER_CORRUPT


class TestFECPolicy:
    def test_clean_delivery(self):
        decision = destination_policy(LinkProtection.FEC, 10, packet_flits(dst=10))
        assert decision.action is DeliveryAction.DELIVER

    def test_single_payload_error_corrected(self):
        flits = packet_flits(dst=10)
        flits[1].corrupt(Corruption.SINGLE)
        decision = destination_policy(LinkProtection.FEC, 10, flits)
        assert decision.action is DeliveryAction.DELIVER

    def test_multi_payload_error_delivered_corrupt(self):
        flits = packet_flits(dst=10)
        flits[1].corrupt(Corruption.MULTI)
        decision = destination_policy(LinkProtection.FEC, 10, flits)
        assert decision.action is DeliveryAction.DELIVER_CORRUPT

    def test_recoverable_misroute_forwards_to_true_dst(self):
        # The paper's scenario: corrected at the wrong destination, then
        # "the packet should be sent to the correct destination".
        flits = packet_flits(dst=10)
        head = flits[0]
        apply_header_upset(head, Corruption.SINGLE, HeaderField.DST, 64, random.Random(3))
        decision = destination_policy(LinkProtection.FEC, head.dst, flits)
        assert decision.action is DeliveryAction.FORWARD_TO_TRUE_DST
        assert decision.destination == 10

    def test_unrecoverable_misroute_lost(self):
        flits = packet_flits(dst=10)
        head = flits[0]
        apply_header_upset(head, Corruption.MULTI, HeaderField.DST, 64, random.Random(3))
        decision = destination_policy(LinkProtection.FEC, head.dst, flits)
        assert decision.action is DeliveryAction.LOST


class TestE2EPolicy:
    def test_clean_delivery(self):
        decision = destination_policy(LinkProtection.E2E, 10, packet_flits(dst=10))
        assert decision.action is DeliveryAction.DELIVER

    def test_any_corruption_requests_retransmission(self):
        for severity in (Corruption.SINGLE, Corruption.MULTI):
            flits = packet_flits(src=3, dst=10)
            flits[2].corrupt(severity)
            decision = destination_policy(LinkProtection.E2E, 10, flits)
            assert decision.action is DeliveryAction.REQUEST_RETRANSMISSION
            assert decision.source == 3

    def test_misrouted_packet_requests_from_wrong_destination(self):
        flits = packet_flits(src=3, dst=10)
        head = flits[0]
        apply_header_upset(head, Corruption.SINGLE, HeaderField.DST, 64, random.Random(5))
        decision = destination_policy(LinkProtection.E2E, head.dst, flits)
        assert decision.action is DeliveryAction.REQUEST_RETRANSMISSION
        assert decision.source == 3

    def test_corrupted_source_field_loses_packet(self):
        # "If the source node address is corrupted, E2E techniques cannot
        # send the retransmission request to the correct source."
        flits = packet_flits(src=3, dst=10)
        flits[0].corrupt(Corruption.MULTI)
        flits[0].src_error = Corruption.MULTI
        decision = destination_policy(LinkProtection.E2E, 10, flits)
        assert decision.action is DeliveryAction.LOST

    def test_recoverable_source_field_still_requests(self):
        flits = packet_flits(src=3, dst=10)
        flits[0].corrupt(Corruption.MULTI)
        flits[0].src_error = Corruption.SINGLE
        decision = destination_policy(LinkProtection.E2E, 10, flits)
        assert decision.action is DeliveryAction.REQUEST_RETRANSMISSION


class TestUnknownScheme:
    def test_raises(self):
        with pytest.raises(ValueError):
            destination_policy("bogus", 10, packet_flits(dst=10))  # type: ignore[arg-type]


class TestWrongEjection:
    def test_packet_at_wrong_node_forwarded_to_header_destination(self):
        # An undetected logic fault ejected the packet at node 4, but the
        # header clearly says 10: every scheme forwards it onward.
        for scheme in (LinkProtection.HBH, LinkProtection.E2E, LinkProtection.FEC):
            decision = destination_policy(scheme, 4, packet_flits(dst=10))
            assert decision.action is DeliveryAction.FORWARD_TO_TRUE_DST
            assert decision.destination == 10
