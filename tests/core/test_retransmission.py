"""Tests for the barrel-shift retransmission buffer and output channels."""

import pytest

from repro.core.retransmission import OutputChannel, RetransmissionBuffer
from repro.noc.flit import Flit
from repro.types import FlitType


def make_flit(seq):
    return Flit(0, seq, FlitType.BODY, 0, 1)


class TestRetransmissionBuffer:
    def test_holds_last_depth_flits(self):
        buf = RetransmissionBuffer(3)
        for seq in range(5):
            buf.store(seq, make_flit(seq))
        assert [s for s, _ in buf.entries_from(0)] == [2, 3, 4]
        assert buf.occupancy == 3

    def test_entries_from_filters_and_sorts(self):
        buf = RetransmissionBuffer(3)
        for seq in (7, 8, 9):
            buf.store(seq, make_flit(seq))
        assert [s for s, _ in buf.entries_from(8)] == [8, 9]
        assert buf.entries_from(10) == []

    def test_restore_replaces_same_seq(self):
        # A retransmitted flit re-enters the back of the barrel shifter;
        # the sequence must not be duplicated.
        buf = RetransmissionBuffer(3)
        buf.store(1, make_flit(1))
        buf.store(2, make_flit(2))
        buf.store(1, make_flit(1))
        assert [s for s, _ in buf.entries_from(0)] == [1, 2]
        assert buf.occupancy == 2

    def test_get(self):
        buf = RetransmissionBuffer(3)
        flit = make_flit(4)
        buf.store(4, flit)
        assert buf.get(4) is flit
        assert buf.get(5) is None

    def test_corrupted_seq_cleared_on_overwrite(self):
        buf = RetransmissionBuffer(3)
        buf.store(1, make_flit(1))
        buf.corrupted_seqs.add(1)
        buf.store(1, make_flit(1))
        assert 1 not in buf.corrupted_seqs

    def test_corrupted_seq_cleared_on_eviction(self):
        buf = RetransmissionBuffer(2)
        buf.store(1, make_flit(1))
        buf.corrupted_seqs.add(1)
        buf.store(2, make_flit(2))
        buf.store(3, make_flit(3))  # evicts seq 1
        assert 1 not in buf.corrupted_seqs

    def test_duplicate_buffer_restores_clean_copy(self):
        buf = RetransmissionBuffer(3, duplicate=True)
        buf.store(1, make_flit(1))
        assert buf.restore_from_duplicate(1) is not None
        assert buf.restore_from_duplicate(9) is None

    def test_no_duplicate_buffer_by_default(self):
        buf = RetransmissionBuffer(3)
        buf.store(1, make_flit(1))
        assert buf.restore_from_duplicate(1) is None

    def test_rejects_zero_depth(self):
        with pytest.raises(ValueError):
            RetransmissionBuffer(0)

    def test_clear(self):
        buf = RetransmissionBuffer(3)
        buf.store(1, make_flit(1))
        buf.corrupted_seqs.add(1)
        buf.clear()
        assert buf.occupancy == 0 and not buf.corrupted_seqs


class TestOutputChannel:
    def make_channel(self, depth=3):
        channel = OutputChannel(port=1, vc=0, depth=depth)
        channel.credits = 4
        return channel

    def test_sequence_numbers_monotonic(self):
        channel = self.make_channel()
        assert [channel.take_seq() for _ in range(3)] == [0, 1, 2]

    def test_allocation_lifecycle(self):
        channel = self.make_channel()
        assert not channel.is_allocated
        channel.allocate((2, 1))
        assert channel.is_allocated and channel.allocated_to == (2, 1)
        channel.release()
        assert not channel.is_allocated
        assert channel.last_owner == (2, 1)  # persists for route-NACK lookup

    def test_rollback_queues_replays_in_order(self):
        channel = self.make_channel()
        for seq in range(3):
            channel.retx.store(seq, make_flit(seq))
        added = channel.rollback(1)
        assert added == 2
        assert [s for s, _ in channel.replay_queue] == [1, 2]

    def test_rollback_idempotent_for_duplicate_nacks(self):
        channel = self.make_channel()
        for seq in range(3):
            channel.retx.store(seq, make_flit(seq))
        channel.rollback(1)
        assert channel.rollback(1) == 0
        assert [s for s, _ in channel.replay_queue] == [1, 2]

    def test_extract_rollback_flits_removes_from_window(self):
        channel = self.make_channel()
        flits = [make_flit(s) for s in range(3)]
        for seq, flit in enumerate(flits):
            channel.retx.store(seq, flit)
        extracted = channel.extract_rollback_flits(1)
        assert extracted == flits[1:]
        assert channel.retx.entries_from(0) == [(0, flits[0])]
        # Stale replays beyond the extraction point are dropped too.
        assert all(s < 1 for s, _ in channel.replay_queue)

    def test_absorption_capacity_shared_with_replays(self):
        channel = self.make_channel(depth=3)
        assert channel.absorption_capacity == 3
        channel.absorb(make_flit(0))
        assert channel.absorption_capacity == 2
        channel.retx.store(5, make_flit(5))
        channel.rollback(5)
        assert channel.absorption_capacity == 1

    def test_absorption_overflow_raises(self):
        channel = self.make_channel(depth=3)
        for i in range(3):
            channel.absorb(make_flit(i))
        with pytest.raises(OverflowError):
            channel.absorb(make_flit(3))

    def test_has_pending_output(self):
        channel = self.make_channel()
        assert not channel.has_pending_output
        channel.absorb(make_flit(0))
        assert channel.has_pending_output
