"""Tests for the Section 4 logic-error recovery-latency model."""

import pytest

from repro.core.logic_recovery import recovery_latency, worst_case_logic_penalty


class TestRecoveryLatency:
    @pytest.mark.parametrize("stages", [1, 2, 3, 4])
    def test_va_errors_cost_one_cycle(self, stages):
        # "The latency delay is still one clock cycle" for every depth.
        assert recovery_latency("va", "ac", stages) == 1

    @pytest.mark.parametrize("stages", [1, 2, 3, 4])
    def test_sa_errors_cost_one_cycle(self, stages):
        assert recovery_latency("sa", "ac", stages) == 1

    @pytest.mark.parametrize("stages", [1, 2, 3, 4])
    def test_local_rt_catch_costs_one_cycle(self, stages):
        assert recovery_latency("rt", "local", stages) == 1

    def test_remote_rt_catch_scales_with_pipeline(self):
        # "The delay penalty is equal to 1 + n (NACK + re-routing and
        # retransmission)."
        for stages in (1, 2, 3, 4):
            assert recovery_latency("rt", "remote", stages) == 1 + stages

    def test_lookahead_matches_papers_quoted_values(self):
        # 3 cycles for a 2-stage router, 2 cycles for a 1-stage router.
        assert recovery_latency("rt", "lookahead", 2) == 3
        assert recovery_latency("rt", "lookahead", 1) == 2

    def test_sa_collision_via_ecc_costs_two_cycles(self):
        # Case (c): NACK + retransmission, independent of pipeline depth.
        for stages in (1, 2, 3, 4):
            assert recovery_latency("sa", "ecc", stages) == 2

    def test_crossbar_upsets_are_free(self):
        assert recovery_latency("crossbar", "ecc", 3) == 0

    def test_unknown_combination_raises(self):
        with pytest.raises(KeyError):
            recovery_latency("va", "ecc", 3)

    def test_invalid_pipeline_raises(self):
        with pytest.raises(ValueError):
            recovery_latency("va", "ac", 5)


class TestWorstCase:
    def test_worst_case_is_remote_rt(self):
        for stages in (1, 2, 3, 4):
            assert worst_case_logic_penalty(stages) == 1 + stages
