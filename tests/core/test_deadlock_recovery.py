"""Integration tests for probe-based deadlock detection and recovery.

These exercise the full stack: scripted source-routed packets form a true
cyclic deadlock; the probes must confirm it (no false positives), the
activation must switch the cycle into recovery mode, and the buffer
shifting must deliver every packet.
"""

import pytest

from repro.experiments.deadlock_demo import (
    CYCLE_SPECS,
    run_deadlock_demo,
    run_worst_case_demo,
)
from repro.config import NoCConfig, SimulationConfig
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.types import Direction, RoutingAlgorithm


class TestCyclicDeadlock:
    def test_without_recovery_network_deadlocks(self):
        outcome = run_deadlock_demo(recovery=False, max_cycles=600)
        assert outcome.delivered == 0
        assert not outcome.deadlock_broken

    def test_recovery_breaks_deadlock(self):
        outcome = run_deadlock_demo(recovery=True)
        assert outcome.deadlock_broken
        assert outcome.cycles_to_resolution is not None
        assert outcome.deadlocks_detected >= 1
        assert outcome.probes_sent >= 1
        assert outcome.recovery_forwards >= 1  # flits moved into retx buffers

    def test_scenario_satisfies_eq1(self):
        outcome = run_deadlock_demo(recovery=True)
        assert outcome.satisfies_eq1

    def test_worst_case_with_followers(self):
        blocked = run_worst_case_demo(recovery=False, max_cycles=600)
        assert not blocked.deadlock_broken
        recovered = run_worst_case_demo(recovery=True)
        assert recovered.deadlock_broken

    def test_recovery_is_deterministic(self):
        a = run_deadlock_demo(recovery=True)
        b = run_deadlock_demo(recovery=True)
        assert a.cycles_to_resolution == b.cycles_to_resolution


class TestNoFalsePositives:
    def _long_chain_network(self, threshold=6):
        # Deliberately under-provisioned recovery buffers (T=2 < M=8): this
        # scenario never deadlocks, so recovery is never asked to deliver on
        # the Eq. 1 guarantee — but the construction-time advisory fires.
        with pytest.warns(UserWarning, match="NOC001"):
            noc = NoCConfig(
                width=4,
                height=1,
                num_vcs=1,
                vc_buffer_depth=2,
                flits_per_packet=8,
                routing=RoutingAlgorithm.SOURCE,
                deadlock_recovery_enabled=True,
                deadlock_threshold=threshold,
            )
        return Network(SimulationConfig(noc=noc))

    def test_plain_congestion_is_not_a_deadlock(self):
        """A long blocking chain with no cycle: probes launch (the flits
        block past C_thres) but must be discarded at the chain's head —
        "the probing technique will first assess the situation to prevent
        the occurrence of any false positives"."""
        net = self._long_chain_network()
        # Several long packets all streaming east into node 3's NI: heavy
        # blocking, zero cyclic dependency.
        for pid, src in enumerate((0, 0, 1, 1, 2)):
            hops = [Direction.EAST] * (3 - src)
            net.interfaces[src].enqueue(
                Packet(pid, src=src, dst=3, num_flits=8, injection_cycle=0,
                       source_route=hops)
            )
        for _ in range(1500):
            net.step()
            if net.delivered == 5:
                break
        net.finalize_stats()
        assert net.delivered == 5
        assert net.stats.counter("deadlocks_detected") == 0
        assert net.stats.counter("recovery_activations") == 0


class TestRecoveryUnderLoad:
    def test_fully_adaptive_routing_with_recovery_delivers(self):
        """Minimal fully-adaptive routing has no escape channels; with the
        recovery scheme enabled a saturated network must still make
        progress.  (This is the paper's motivating use case: recovery
        instead of restricted routing.)"""
        noc = NoCConfig(
            width=4,
            height=4,
            num_vcs=2,
            routing=RoutingAlgorithm.FULLY_ADAPTIVE,
            deadlock_recovery_enabled=True,
            deadlock_threshold=24,
        )
        from repro.config import WorkloadConfig

        config = SimulationConfig(
            noc=noc,
            workload=WorkloadConfig(
                injection_rate=0.5,
                num_messages=400,
                warmup_messages=50,
                max_cycles=30_000,
                seed=5,
            ),
        )
        from repro.noc.simulator import run_simulation

        result = run_simulation(config)
        assert result.packets_delivered >= 400
        assert not result.hit_cycle_limit
