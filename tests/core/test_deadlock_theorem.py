"""Tests for the Eq. 1 buffer-sizing theorem (Section 3.2.1)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.deadlock import (
    buffer_lower_bound,
    max_packets_per_buffer,
    minimum_total_buffer,
)


class TestPaperExamples:
    def test_figure10_example(self):
        # T=4, R=3, M=4, N=ceil(4/4)=1, n=3: B2 = 3*(4+3) = 21 > 4*3 = 12.
        assert buffer_lower_bound(4, [4, 4, 4], [3, 3, 3])

    def test_figure11_example(self):
        # T=6, R=3, M=4, N=ceil(6/4)=2, n=4: B2 = 4*(6+3) = 36 > 4*2*4 = 32.
        assert buffer_lower_bound(4, [6, 6, 6, 6], [3, 3, 3, 3])

    def test_equality_is_not_sufficient(self):
        # The theorem demands a strict inequality: one spare slot.
        # T=5, R=3, M=4, N=ceil(5/4)=2: per-node B = 8 == M*N = 8.
        assert not buffer_lower_bound(4, [5, 5], [3, 3])

    def test_no_retransmission_buffers_fails(self):
        # Without the retransmission buffers, T=4=M leaves no slack.
        assert not buffer_lower_bound(4, [4, 4, 4], [0, 0, 0])


class TestMaxPacketsPerBuffer:
    @pytest.mark.parametrize(
        "depth,m,expected", [(4, 4, 1), (6, 4, 2), (8, 4, 2), (9, 4, 3), (1, 4, 1)]
    )
    def test_values(self, depth, m, expected):
        assert max_packets_per_buffer(depth, m) == expected

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            max_packets_per_buffer(0, 4)
        with pytest.raises(ValueError):
            max_packets_per_buffer(4, 0)


class TestMinimumTotalBuffer:
    def test_is_the_boundary(self):
        m = 4
        depths = [4, 4, 4]
        minimum = minimum_total_buffer(m, depths)
        # Exactly at the minimum: satisfied; one less: violated.
        spare = minimum - sum(depths)
        retx = [spare, 0, 0]
        assert buffer_lower_bound(m, depths, retx)
        retx_short = [spare - 1, 0, 0]
        assert not buffer_lower_bound(m, depths, retx_short)


class TestValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            buffer_lower_bound(4, [4, 4], [3])

    def test_empty_configuration(self):
        with pytest.raises(ValueError):
            buffer_lower_bound(4, [], [])


class TestProperties:
    @given(
        m=st.integers(min_value=1, max_value=16),
        depths=st.lists(st.integers(min_value=1, max_value=32), min_size=1, max_size=8),
        retx=st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=200, deadline=None)
    def test_bound_matches_direct_arithmetic(self, m, depths, retx):
        retx_depths = [retx] * len(depths)
        expected = sum(depths) + retx * len(depths) > m * sum(
            math.ceil(t / m) for t in depths
        )
        assert buffer_lower_bound(m, depths, retx_depths) == expected

    @given(
        m=st.integers(min_value=1, max_value=16),
        depths=st.lists(st.integers(min_value=1, max_value=32), min_size=1, max_size=8),
    )
    @settings(max_examples=200, deadline=None)
    def test_adding_retransmission_capacity_is_monotone(self, m, depths):
        """If a configuration satisfies Eq. 1, adding retransmission slots
        never breaks it (the theorem's practical design direction)."""
        base = minimum_total_buffer(m, depths) - sum(depths)
        per_node = math.ceil(base / len(depths))
        assert buffer_lower_bound(m, depths, [per_node] * len(depths))
        assert buffer_lower_bound(m, depths, [per_node + 1] * len(depths))

    @given(
        m=st.integers(min_value=1, max_value=8),
        n=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_paper_parameterization_with_3_deep_retx(self, m, n):
        """With T = M (a packet exactly fills a buffer) and the paper's
        3-deep retransmission buffers, Eq. 1 always holds: per node,
        T + R = M + 3 > M * ceil(M/M) = M."""
        assert buffer_lower_bound(m, [m] * n, [3] * n)
