"""Unit tests for the probing protocol state machine (Rules 1-4)."""

import pytest

from repro.core.deadlock import DeadlockController, ProbeAction


def controller(node=0, threshold=16):
    return DeadlockController(node=node, threshold=threshold)


class TestRule1Launching:
    def test_no_probe_below_threshold(self):
        c = controller(threshold=16)
        assert not c.should_probe(cycle=100, blocked_cycles=16)

    def test_probe_above_threshold(self):
        c = controller(threshold=16)
        assert c.should_probe(cycle=100, blocked_cycles=17)

    def test_one_outstanding_probe_at_a_time(self):
        c = controller()
        assert c.should_probe(100, 50)
        c.note_probe_sent(100)
        assert not c.should_probe(101, 51)

    def test_lost_probe_times_out_and_resends(self):
        c = controller(threshold=16)
        c.note_probe_sent(100)
        timeout = DeadlockController.PROBE_TIMEOUT_FACTOR * 16
        assert c.should_probe(100 + timeout + 1, 999)

    def test_no_probe_while_recovering(self):
        c = controller()
        c.enter_recovery(100)
        assert not c.should_probe(101, 999)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            DeadlockController(node=0, threshold=0)


class TestRule2Forwarding:
    def test_forwards_when_target_blocked(self):
        c = controller(node=5)
        decision = c.on_probe(100, origin=9, target_blocked=True, target_route=(2, 1))
        assert decision.action is ProbeAction.FORWARD
        assert (decision.out_port, decision.out_vc) == (2, 1)

    def test_discards_when_target_not_blocked(self):
        c = controller(node=5)
        decision = c.on_probe(100, origin=9, target_blocked=False, target_route=(2, 1))
        assert decision.action is ProbeAction.DISCARD
        assert c.probes_discarded == 1

    def test_forwards_when_in_recovery_even_if_unblocked(self):
        c = controller(node=5)
        c.enter_recovery(99)
        decision = c.on_probe(100, origin=9, target_blocked=False, target_route=(2, 1))
        assert decision.action is ProbeAction.FORWARD

    def test_discards_without_route(self):
        c = controller(node=5)
        decision = c.on_probe(100, origin=9, target_blocked=True, target_route=None)
        assert decision.action is ProbeAction.DISCARD

    def test_own_probe_returning_detects_deadlock(self):
        c = controller(node=5)
        c.note_probe_sent(90)
        decision = c.on_probe(100, origin=5, target_blocked=True, target_route=(2, 1))
        assert decision.action is ProbeAction.DEADLOCK_DETECTED
        assert c.deadlocks_detected == 1


class TestRule3ActivationValidation:
    def test_discards_activation_from_unseen_origin(self):
        c = controller(node=5)
        decision = c.on_activation(100, origin=9, target_route=(2, 1))
        assert decision.action is ProbeAction.DISCARD
        assert not c.in_recovery(101)

    def test_accepts_activation_after_probe_seen(self):
        c = controller(node=5)
        c.on_probe(100, origin=9, target_blocked=True, target_route=(2, 1))
        decision = c.on_activation(105, origin=9, target_route=(2, 1))
        assert decision.action is ProbeAction.ENTER_RECOVERY
        assert c.in_recovery(106)
        assert (decision.forward_out_port, decision.forward_out_vc) == (2, 1)

    def test_probe_memory_expires(self):
        c = controller(node=5, threshold=4)
        c.on_probe(100, origin=9, target_blocked=True, target_route=(2, 1))
        late = 100 + c.probe_memory + 1
        decision = c.on_activation(late, origin=9, target_route=(2, 1))
        assert decision.action is ProbeAction.DISCARD

    def test_origin_activation_return_completes_recovery(self):
        c = controller(node=5)
        decision = c.on_activation(100, origin=5, target_route=None)
        assert decision.action is ProbeAction.ENTER_RECOVERY
        assert c.in_recovery(101)


class TestRule4OwnProbeDiscard:
    def test_activation_while_waiting_discards_own_probe(self):
        c = controller(node=5)
        c.note_probe_sent(90)
        c.on_probe(95, origin=9, target_blocked=True, target_route=(2, 1))
        c.on_activation(100, origin=9, target_route=(2, 1))
        assert c.in_recovery(101)
        # Now our own probe returns: Rule 4 says discard it.
        decision = c.on_probe(110, origin=5, target_blocked=True, target_route=(2, 1))
        assert decision.action is ProbeAction.DISCARD


class TestRecoveryWindow:
    def test_recovery_expires(self):
        c = controller(threshold=4)
        c.enter_recovery(100)
        assert c.in_recovery(100 + c.recovery_duration - 1)
        assert not c.in_recovery(100 + c.recovery_duration)

    def test_reentry_extends(self):
        c = controller(threshold=4)
        c.enter_recovery(100)
        c.enter_recovery(110)
        assert c.in_recovery(110 + c.recovery_duration - 1)
        assert c.activations == 2
