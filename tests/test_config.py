"""Unit tests for the configuration layer."""

import pytest

from repro.config import (
    FaultConfig,
    NoCConfig,
    SimulationConfig,
    WorkloadConfig,
)
from repro.types import FaultSite, LinkProtection, RoutingAlgorithm


class TestNoCConfig:
    def test_paper_defaults(self):
        cfg = NoCConfig()
        assert cfg.width == 8 and cfg.height == 8
        assert cfg.num_nodes == 64
        assert cfg.num_vcs == 3
        assert cfg.flits_per_packet == 4
        assert cfg.pipeline_stages == 3
        assert cfg.retx_buffer_depth == 3
        assert cfg.num_ports == 5
        assert cfg.routing is RoutingAlgorithm.XY
        assert cfg.link_protection is LinkProtection.HBH
        assert cfg.ac_unit_enabled

    def test_replace_returns_new_config(self):
        cfg = NoCConfig()
        other = cfg.replace(width=4)
        assert other.width == 4
        assert cfg.width == 8

    def test_is_frozen(self):
        with pytest.raises(AttributeError):
            NoCConfig().width = 3  # type: ignore[misc]

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(width=0),
            dict(height=-1),
            dict(num_vcs=0),
            dict(vc_buffer_depth=0),
            dict(flits_per_packet=0),
            dict(retx_buffer_depth=2),  # the HBH scheme needs >= 3
            dict(pipeline_stages=5),
            dict(pipeline_stages=0),
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            NoCConfig(**kwargs)

    def test_deadlock_buffer_bound_paper_example(self):
        # Figure 10: T=4, R=3, M=4, n=3 -> satisfied.
        cfg = NoCConfig(vc_buffer_depth=4, retx_buffer_depth=3, flits_per_packet=4)
        assert cfg.deadlock_buffer_bound_ok(3)

    def test_deadlock_buffer_bound_violated(self):
        # R=3 exactly meets, not exceeds, M*N for T=5, M=4 (B=8*n vs 8*n).
        cfg = NoCConfig(vc_buffer_depth=5, retx_buffer_depth=3, flits_per_packet=4)
        assert not cfg.deadlock_buffer_bound_ok(4)


class TestFaultConfig:
    def test_fault_free(self):
        cfg = FaultConfig.fault_free()
        for site in FaultSite:
            assert cfg.rate(site) == 0.0

    def test_link_only(self):
        cfg = FaultConfig.link_only(0.01, multi_bit_fraction=0.5)
        assert cfg.rate(FaultSite.LINK) == 0.01
        assert cfg.rate(FaultSite.ROUTING) == 0.0
        assert cfg.link_multi_bit_fraction == 0.5

    def test_single_site(self):
        cfg = FaultConfig.single_site(FaultSite.SW_ALLOC, 0.002)
        assert cfg.rate(FaultSite.SW_ALLOC) == 0.002
        assert cfg.rate(FaultSite.LINK) == 0.0

    def test_rejects_out_of_range_rate(self):
        with pytest.raises(ValueError):
            FaultConfig(rates={FaultSite.LINK: 1.5})

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            FaultConfig(rates={FaultSite.LINK: -0.1})

    def test_rejects_bad_multi_fraction(self):
        with pytest.raises(ValueError):
            FaultConfig(link_multi_bit_fraction=2.0)

    def test_rejects_non_faultsite_keys(self):
        with pytest.raises(TypeError):
            FaultConfig(rates={"link": 0.1})  # type: ignore[dict-item]


class TestWorkloadConfig:
    def test_defaults_valid(self):
        cfg = WorkloadConfig()
        assert 0 <= cfg.warmup_messages < cfg.num_messages

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(injection_rate=0.0),
            dict(injection_rate=-1.0),
            dict(num_messages=0),
            dict(num_messages=10, warmup_messages=10),
            dict(max_cycles=0),
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            WorkloadConfig(**kwargs)


class TestSimulationConfig:
    def test_compose_and_replace(self):
        cfg = SimulationConfig()
        assert cfg.noc.num_nodes == 64
        other = cfg.replace(collect_utilization=True)
        assert other.collect_utilization and not cfg.collect_utilization
