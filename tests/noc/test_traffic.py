"""Tests for traffic patterns (NR / BC / TN / transpose / hotspot)."""

import random
from collections import Counter

import pytest

from repro.noc.topology import MeshTopology
from repro.traffic.patterns import (
    BitComplementTraffic,
    HotspotTraffic,
    TornadoTraffic,
    TransposeTraffic,
    UniformTraffic,
    make_traffic_pattern,
)
from repro.types import Coordinate

TOPO = MeshTopology(8, 8)
RNG = random.Random(17)


class TestUniform:
    def test_never_self(self):
        pattern = UniformTraffic(TOPO)
        for _ in range(500):
            assert pattern.destination(13, RNG) != 13

    def test_covers_all_destinations(self):
        pattern = UniformTraffic(TOPO)
        seen = {pattern.destination(0, RNG) for _ in range(5000)}
        assert seen == set(range(1, 64))

    def test_roughly_uniform(self):
        pattern = UniformTraffic(TOPO)
        counts = Counter(pattern.destination(0, RNG) for _ in range(12600))
        assert max(counts.values()) < 2 * min(counts.values())

    def test_single_node_mesh_returns_none(self):
        pattern = UniformTraffic(MeshTopology(1, 1))
        assert pattern.destination(0, RNG) is None


class TestBitComplement:
    def test_coordinate_complement(self):
        pattern = BitComplementTraffic(TOPO)
        src = TOPO.node_at(Coordinate(2, 5))
        assert pattern.destination(src, RNG) == TOPO.node_at(Coordinate(5, 2))

    def test_matches_bitwise_complement_on_power_of_two(self):
        pattern = BitComplementTraffic(TOPO)
        for src in TOPO.nodes():
            assert pattern.destination(src, RNG) == (~src) & 63

    def test_is_an_involution(self):
        pattern = BitComplementTraffic(TOPO)
        for src in TOPO.nodes():
            dst = pattern.destination(src, RNG)
            assert pattern.destination(dst, RNG) == src

    def test_center_of_odd_mesh_does_not_inject(self):
        topo = MeshTopology(3, 3)
        pattern = BitComplementTraffic(topo)
        center = topo.node_at(Coordinate(1, 1))
        assert pattern.destination(center, RNG) is None


class TestTornado:
    def test_half_way_around_x(self):
        pattern = TornadoTraffic(TOPO)
        src = TOPO.node_at(Coordinate(1, 4))
        # ceil(8/2) - 1 = 3 columns east, same row.
        assert pattern.destination(src, RNG) == TOPO.node_at(Coordinate(4, 4))

    def test_wraps_modulo_width(self):
        pattern = TornadoTraffic(TOPO)
        src = TOPO.node_at(Coordinate(6, 0))
        assert pattern.destination(src, RNG) == TOPO.node_at(Coordinate(1, 0))

    def test_same_row_always(self):
        pattern = TornadoTraffic(TOPO)
        for src in TOPO.nodes():
            dst = pattern.destination(src, RNG)
            assert TOPO.coordinates_of(dst).y == TOPO.coordinates_of(src).y


class TestTranspose:
    def test_swaps_coordinates(self):
        pattern = TransposeTraffic(TOPO)
        src = TOPO.node_at(Coordinate(2, 6))
        assert pattern.destination(src, RNG) == TOPO.node_at(Coordinate(6, 2))

    def test_diagonal_does_not_inject(self):
        pattern = TransposeTraffic(TOPO)
        diag = TOPO.node_at(Coordinate(3, 3))
        assert pattern.destination(diag, RNG) is None

    def test_requires_square_mesh(self):
        with pytest.raises(ValueError):
            TransposeTraffic(MeshTopology(4, 2))


class TestHotspot:
    def test_hotspots_receive_extra_traffic(self):
        pattern = HotspotTraffic(TOPO, hotspots=[27], hotspot_fraction=0.3)
        counts = Counter(pattern.destination(0, RNG) for _ in range(10_000))
        expected_uniform = 10_000 / 63
        assert counts[27] > 5 * expected_uniform

    def test_validation(self):
        with pytest.raises(ValueError):
            HotspotTraffic(TOPO, hotspots=[])
        with pytest.raises(ValueError):
            HotspotTraffic(TOPO, hotspots=[99])
        with pytest.raises(ValueError):
            HotspotTraffic(TOPO, hotspots=[1], hotspot_fraction=0.0)


class TestFactory:
    @pytest.mark.parametrize(
        "name,cls",
        [
            ("uniform", UniformTraffic),
            ("NR", UniformTraffic),
            ("bit_complement", BitComplementTraffic),
            ("bc", BitComplementTraffic),
            ("tornado", TornadoTraffic),
            ("TN", TornadoTraffic),
            ("transpose", TransposeTraffic),
        ],
    )
    def test_names_and_paper_abbreviations(self, name, cls):
        assert isinstance(make_traffic_pattern(name, TOPO), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_traffic_pattern("randomish", TOPO)
