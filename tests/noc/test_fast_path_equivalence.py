"""Bit-for-bit equivalence of the activity-driven cycle loop.

The activity-driven fast path (``SimulationConfig.activity_driven``) must be
a pure scheduling optimization: skipping idle components may never change
*any* observable of a run.  Because the fault injector draws from one shared
RNG stream, even a single extra or missing draw diverges every subsequent
fault — so these tests compare full :class:`SimulationResult` serializations
(every counter, latency, hop, energy event) between the two loops across
routing algorithms, fault sites, deadlock recovery and protection schemes.

They are the guard the flag exists for: any change to the hot path must keep
this module green (see docs/PERFORMANCE.md).
"""

import pytest

from repro.config import FaultConfig, NoCConfig, SimulationConfig, WorkloadConfig
from repro.faults.intermittent import (
    IntermittentFault,
    IntermittentFaultSchedule,
    WearOutConfig,
)
from repro.faults.permanent import PermanentFault, PermanentFaultSchedule
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.noc.simulator import run_simulation
from repro.noc.trace import PacketTracer
from repro.serialization import result_to_dict
from repro.types import Direction, FaultSite, LinkProtection, RoutingAlgorithm

ALL_SITES = {site: 0.002 for site in FaultSite}


def _config(activity_driven, **kw):
    noc = NoCConfig(
        width=4,
        height=4,
        routing=kw.get("routing", RoutingAlgorithm.XY),
        link_protection=kw.get("protection", LinkProtection.HBH),
        deadlock_recovery_enabled=kw.get("deadlock_recovery", False),
        deadlock_threshold=kw.get("deadlock_threshold", 32),
        retx_buffer_depth=kw.get("retx_depth", 3),
    )
    return SimulationConfig(
        noc=noc,
        faults=FaultConfig(
            rates=kw.get("rates", {}),
            seed=kw.get("seed", 42),
            permanent=kw.get("permanent", PermanentFaultSchedule.empty()),
            intermittent=kw.get(
                "intermittent", IntermittentFaultSchedule.empty()
            ),
            wear_out=kw.get("wear_out", None),
        ),
        workload=WorkloadConfig(
            injection_rate=kw.get("rate", 0.05),
            num_messages=kw.get("messages", 120),
            warmup_messages=20,
            max_cycles=50_000,
        ),
        activity_driven=activity_driven,
        invariant_checks=kw.get("invariant_checks", False),
    )


def _observables(config):
    """Everything a run reports, minus the config echo."""
    result = result_to_dict(run_simulation(config))
    result.pop("config")
    return result


def assert_equivalent(**kw):
    fast = _observables(_config(True, **kw))
    full = _observables(_config(False, **kw))
    assert fast == full


SCENARIOS = {
    "xy_fault_free": dict(),
    "xy_link_faults": dict(rates={FaultSite.LINK: 0.01}),
    "west_first_all_fault_sites": dict(
        routing=RoutingAlgorithm.WEST_FIRST, rates=ALL_SITES
    ),
    "adaptive_deadlock_recovery": dict(
        routing=RoutingAlgorithm.FULLY_ADAPTIVE,
        deadlock_recovery=True,
        deadlock_threshold=16,
        retx_depth=8,
        rates={FaultSite.LINK: 0.005},
        rate=0.30,
        messages=200,
    ),
    "e2e_protection": dict(
        protection=LinkProtection.E2E, rates={FaultSite.LINK: 0.01}
    ),
    "fec_protection": dict(
        protection=LinkProtection.FEC, rates={FaultSite.LINK: 0.01}
    ),
    "xy_all_sites_alt_seed": dict(rates=ALL_SITES, seed=7, rate=0.15),
    # Permanent faults must not perturb the RNG stream or activity sets:
    # the teardown draws no randomness and wakes the same components.
    "permanent_link_kill_mid_run": dict(
        permanent=PermanentFaultSchedule.of(
            PermanentFault("link", 5, Direction.EAST, cycle=200)
        ),
        rate=0.15,
        messages=200,
    ),
    "permanent_router_kill_with_transients": dict(
        permanent=PermanentFaultSchedule.of(
            PermanentFault("router", 10, cycle=250)
        ),
        rates={FaultSite.LINK: 0.005},
        rate=0.20,
        messages=200,
    ),
    "permanent_storm_doa_and_vc": dict(
        permanent=PermanentFaultSchedule.of(
            PermanentFault("link", 9, Direction.NORTH),
            PermanentFault("vc", 6, Direction.SOUTH, vc=1, cycle=150),
            PermanentFault("link", 1, Direction.EAST, cycle=300),
        ),
        rates=ALL_SITES,
        rate=0.25,
        messages=250,
    ),
    # Intermittent bursts draw from per-site RNG streams; the shared
    # injector stream and the activity sets must be untouched by them.
    "intermittent_bursts": dict(
        intermittent=IntermittentFaultSchedule.of(
            IntermittentFault(5, Direction.EAST, 0.4, 25.0, 60.0),
            IntermittentFault(10, Direction.NORTH, 0.6, 15.0, 40.0, start=100),
        ),
        rate=0.15,
        messages=200,
    ),
    "intermittent_with_transients_and_wear_out": dict(
        intermittent=IntermittentFaultSchedule.of(
            IntermittentFault(6, Direction.SOUTH, 0.5, 30.0, 50.0),
            IntermittentFault(9, Direction.WEST, 0.5, 30.0, 50.0),
        ),
        wear_out=WearOutConfig(threshold=12.0),
        rates={FaultSite.LINK: 0.005},
        rate=0.20,
        messages=200,
    ),
}


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_fast_path_is_bit_for_bit_equivalent(scenario):
    assert_equivalent(**SCENARIOS[scenario])


def test_equivalence_holds_under_invariant_sanitizer():
    """The SIM10x sanitizer sees identical legal state on both loops."""
    assert_equivalent(
        rates={FaultSite.LINK: 0.01}, invariant_checks=True, messages=60
    )


def test_idle_components_are_actually_skipped(monkeypatch):
    """On an empty mesh the fast path must not poll a single router."""
    from repro.noc import router as router_mod

    calls = {"compute": 0, "receive": 0}
    real_compute = router_mod.Router.compute
    real_receive = router_mod.Router.receive

    def counting_compute(self, cycle):
        calls["compute"] += 1
        return real_compute(self, cycle)

    def counting_receive(self, cycle):
        calls["receive"] += 1
        return real_receive(self, cycle)

    monkeypatch.setattr(router_mod.Router, "compute", counting_compute)
    monkeypatch.setattr(router_mod.Router, "receive", counting_receive)

    net = Network(SimulationConfig(noc=NoCConfig(width=4, height=4)))
    for _ in range(100):
        net.step()
    assert calls == {"compute": 0, "receive": 0}

    # The full loop polls every router every cycle — the baseline the fast
    # path removes.
    net_full = Network(
        SimulationConfig(noc=NoCConfig(width=4, height=4), activity_driven=False)
    )
    for _ in range(100):
        net_full.step()
    assert calls["compute"] == 100 * 16


def test_activity_invariants_hold_every_cycle():
    """Active sets always cover live work, even under heavy faults."""
    config = _config(
        True,
        routing=RoutingAlgorithm.FULLY_ADAPTIVE,
        deadlock_recovery=True,
        deadlock_threshold=16,
        retx_depth=8,
        rates=ALL_SITES,
        rate=0.25,
    )
    net = Network(config)
    import random

    rng = random.Random(3)
    pid = 0
    for node in range(16):
        for _ in range(4):
            dst = rng.randrange(15)
            dst = dst if dst < node else dst + 1
            net.interfaces[node].enqueue(Packet(pid, node, dst, 4, 0))
            pid += 1
    for _ in range(600):
        net.step()
        net.verify_activity_invariants()
    assert net.completed > 0


def test_packet_tracer_sees_identical_itineraries():
    """PacketTracer rides on ``network.step()`` unchanged on both loops."""

    def traced_itinerary(activity_driven):
        net = Network(
            SimulationConfig(
                noc=NoCConfig(width=4, height=4),
                activity_driven=activity_driven,
            )
        )
        net.interfaces[0].enqueue(Packet(0, 0, 15, 4, 0))
        net.interfaces[5].enqueue(Packet(1, 5, 2, 4, 0))
        tracer = PacketTracer(net, watch=[0, 1])
        assert tracer.run_until_delivered(2) is not None
        return [
            [
                (s.cycle, s.flit_seq, s.location)
                for s in tracer.trace(pid).sightings
            ]
            for pid in (0, 1)
        ]

    assert traced_itinerary(True) == traced_itinerary(False)


def test_serialization_round_trips_the_flag():
    from repro.serialization import config_from_dict, config_to_dict

    for flag in (True, False):
        config = SimulationConfig(activity_driven=flag)
        assert config_from_dict(config_to_dict(config)).activity_driven is flag


# -- telemetry equivalence ---------------------------------------------------
#
# With telemetry enabled, both loops must produce (a) the same simulation
# observables as each other AND as the telemetry-off run, and (b) identical
# event streams and sampled series.  Events fire only inside state changes
# that are themselves loop-invariant, and sampling is a pure read at fixed
# cycles, so any divergence here means a publish site leaked into scheduling.

from repro.telemetry import TelemetryConfig  # noqa: E402

TELEMETRY_SCENARIOS = [
    "xy_link_faults",
    "west_first_all_fault_sites",
    "adaptive_deadlock_recovery",
    "permanent_storm_doa_and_vc",
]


def _telemetry_config(activity_driven, **kw):
    config = _config(activity_driven, **kw)
    return SimulationConfig(
        noc=config.noc,
        faults=config.faults,
        workload=config.workload,
        activity_driven=activity_driven,
        invariant_checks=config.invariant_checks,
        telemetry=TelemetryConfig(enabled=True, metrics_interval=50),
    )


def _telemetry_streams(config):
    result = run_simulation(config)
    report = result.telemetry
    observables = result_to_dict(result)
    observables.pop("config")
    observables.pop("telemetry", None)
    events = [
        (e.cycle, e.kind, e.node, tuple(sorted(e.data.items())))
        for e in report.events
    ]
    return observables, events, report.series


@pytest.mark.parametrize("scenario", TELEMETRY_SCENARIOS)
def test_telemetry_streams_are_loop_invariant(scenario):
    kw = SCENARIOS[scenario]
    fast = _telemetry_streams(_telemetry_config(True, **kw))
    full = _telemetry_streams(_telemetry_config(False, **kw))
    assert fast[0] == full[0]  # observables
    assert fast[1] == full[1]  # event stream
    assert fast[2] == full[2]  # sampled series


@pytest.mark.parametrize("activity_driven", [True, False])
def test_telemetry_does_not_perturb_observables(activity_driven):
    """Telemetry on vs off: identical results on either loop."""
    kw = SCENARIOS["xy_all_sites_alt_seed"]
    with_tel = _telemetry_streams(_telemetry_config(activity_driven, **kw))[0]
    without = _observables(_config(activity_driven, **kw))
    assert with_tel == without


# -- batched-kernel equivalence ----------------------------------------------
#
# ``backend="batched"`` swaps the object cycle loop for the struct-of-arrays
# kernel (repro.noc.kernel).  Inside its domain the kernel must be bit-for-bit
# equivalent — every counter, latency, hop, energy tally, telemetry event and
# series sample.  Outside its domain the network silently falls back to the
# object loop, so the flag must *never* change results on any config.

import dataclasses  # noqa: E402

from repro import api  # noqa: E402
from repro.noc.kernel import kernel_supports  # noqa: E402

#: In-domain scenarios, expressed as api.load_config overrides on a 4x4
#: baseline.  Together they cover every batchable axis: all three supported
#: routing algorithms, both topologies, every pipeline depth, single-flit
#: packets, VC/depth extremes, utilization collection and both supported
#: protection schemes.
BATCHED_SCENARIOS = {
    "xy_baseline": dict(),
    "west_first_contention": dict(routing="west_first", rate=0.3, messages=200),
    "fully_adaptive_contention": dict(
        routing="fully_adaptive", rate=0.35, messages=200
    ),
    "torus_xy": dict(topology="torus", rate=0.15),
    "torus_west_first": dict(topology="torus", routing="west_first", rate=0.15),
    "single_stage_pipeline": dict(pipeline_stages=1),
    "two_stage_pipeline": dict(pipeline_stages=2),
    "four_stage_pipeline": dict(pipeline_stages=4),
    "single_flit_packets": dict(flits=1, messages=150),
    "one_vc_shallow_buffers": dict(vcs=1, buffer_depth=2, rate=0.15),
    "many_vcs_deep_buffers": dict(vcs=4, buffer_depth=8, rate=0.25),
    "utilization_collection": dict(collect_utilization=True, rate=0.2),
    "unprotected_links": dict(scheme="none", rate=0.15),
}


def _backend_observables(backend, **kw):
    base = dict(width=4, height=4, rate=0.05, messages=120, warmup=20, seed=11)
    base.update(kw)
    result = result_to_dict(api.run(api.load_config(backend=backend, **base)))
    assert result.pop("config")["backend"] == backend
    return result


@pytest.mark.filterwarnings("ignore:NOC008")  # torus_xy: advisory, no wedge
@pytest.mark.parametrize("scenario", BATCHED_SCENARIOS)
def test_batched_kernel_is_bit_for_bit_equivalent(scenario):
    kw = BATCHED_SCENARIOS[scenario]
    assert _backend_observables("batched", **kw) == _backend_observables(
        "object", **kw
    )


@pytest.mark.parametrize("scenario", SCENARIOS)
def test_batched_flag_never_changes_results(scenario):
    """Requesting the batched backend on *any* config — including every
    fault/recovery scenario above, all outside the batchable domain — must
    leave results untouched (the out-of-domain path falls back silently)."""
    kw = SCENARIOS[scenario]
    batched = dataclasses.replace(_config(True, **kw), backend="batched")
    assert _observables(batched) == _observables(_config(True, **kw))


def test_out_of_domain_configs_fall_back_to_the_object_loop():
    config = dataclasses.replace(
        _config(True, rates={FaultSite.LINK: 0.01}), backend="batched"
    )
    net = Network(config)
    assert net.kernel is None  # fell back
    in_domain = dataclasses.replace(_config(True), backend="batched")
    assert Network(in_domain).kernel is not None


def test_kernel_supports_names_each_unsupported_feature():
    assert kernel_supports(_config(True)) is None
    cases = [
        (dict(rates={FaultSite.LINK: 0.01}), "transient"),
        (
            dict(
                permanent=PermanentFaultSchedule.of(
                    PermanentFault("link", 5, Direction.EAST, cycle=200)
                )
            ),
            "permanent",
        ),
        (
            dict(
                intermittent=IntermittentFaultSchedule.of(
                    IntermittentFault(5, Direction.EAST, 0.4, 25.0, 60.0)
                )
            ),
            "intermittent",
        ),
        (dict(protection=LinkProtection.E2E), "end-to-end"),
        (dict(deadlock_recovery=True), "deadlock"),
        (dict(invariant_checks=True), "sanitizer"),
    ]
    for kw, needle in cases:
        reason = kernel_supports(_config(True, **kw))
        assert reason is not None and needle in reason
    ecc = dataclasses.replace(_config(True), payload_ecc_check=True)
    assert "ECC" in kernel_supports(ecc)


@pytest.mark.parametrize(
    "scenario", ["xy_baseline", "many_vcs_deep_buffers", "torus_west_first"]
)
def test_batched_telemetry_is_byte_identical(scenario, tmp_path):
    """Events, sampled series and the NDJSON export itself must match the
    object backend byte for byte (KernelSampler contract)."""
    from repro.telemetry import write_ndjson

    base = dict(
        width=4,
        height=4,
        rate=0.1,
        messages=150,
        warmup=20,
        seed=23,
        telemetry=True,
        metrics_interval=20,
    )
    base.update(BATCHED_SCENARIOS[scenario])
    exports = {}
    for backend in ("object", "batched"):
        result = api.run(api.load_config(backend=backend, **base))
        path = tmp_path / f"{backend}.ndjson"
        write_ndjson(result.telemetry, path)
        exports[backend] = path.read_bytes()
    assert exports["object"] == exports["batched"]


def test_packet_tracer_refuses_a_batched_network():
    config = dataclasses.replace(_config(True), backend="batched")
    net = Network(config)
    assert net.kernel is not None
    with pytest.raises(ValueError, match="backend='object'"):
        PacketTracer(net, watch=[0])


def test_serialization_round_trips_the_backend():
    from repro.serialization import config_from_dict, config_to_dict

    for backend in ("object", "batched"):
        config = SimulationConfig(backend=backend)
        assert config_from_dict(config_to_dict(config)).backend == backend
    # Older serialized configs (no key) default to the object backend.
    legacy = config_to_dict(SimulationConfig())
    legacy.pop("backend")
    assert config_from_dict(legacy).backend == "object"
