"""Tests for mesh and torus topologies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.topology import MeshTopology, TorusTopology
from repro.types import Coordinate, Direction


class TestMeshBasics:
    def test_dimensions(self):
        topo = MeshTopology(8, 8)
        assert topo.num_nodes == 64

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            MeshTopology(0, 4)

    def test_coordinate_mapping_roundtrip(self):
        topo = MeshTopology(5, 3)
        for node in topo.nodes():
            assert topo.node_at(topo.coordinates_of(node)) == node

    def test_row_major_layout(self):
        topo = MeshTopology(4, 4)
        assert topo.coordinates_of(0) == Coordinate(0, 0)
        assert topo.coordinates_of(3) == Coordinate(3, 0)
        assert topo.coordinates_of(4) == Coordinate(0, 1)
        assert topo.coordinates_of(15) == Coordinate(3, 3)

    def test_rejects_out_of_range_node(self):
        topo = MeshTopology(2, 2)
        with pytest.raises(ValueError):
            topo.coordinates_of(4)
        with pytest.raises(ValueError):
            topo.node_at(Coordinate(2, 0))


class TestMeshNeighbors:
    def test_interior_node_has_four_neighbors(self):
        topo = MeshTopology(4, 4)
        center = topo.node_at(Coordinate(1, 1))
        assert topo.neighbor(center, Direction.NORTH) == topo.node_at(Coordinate(1, 2))
        assert topo.neighbor(center, Direction.SOUTH) == topo.node_at(Coordinate(1, 0))
        assert topo.neighbor(center, Direction.EAST) == topo.node_at(Coordinate(2, 1))
        assert topo.neighbor(center, Direction.WEST) == topo.node_at(Coordinate(0, 1))

    def test_corner_edges(self):
        topo = MeshTopology(4, 4)
        origin = 0  # (0, 0)
        assert topo.neighbor(origin, Direction.WEST) is None
        assert topo.neighbor(origin, Direction.SOUTH) is None
        assert set(topo.edge_directions(origin)) == {Direction.WEST, Direction.SOUTH}
        assert set(topo.connected_directions(origin)) == {
            Direction.NORTH,
            Direction.EAST,
        }

    def test_local_has_no_neighbor(self):
        topo = MeshTopology(2, 2)
        assert topo.neighbor(0, Direction.LOCAL) is None

    def test_neighbor_symmetry(self):
        topo = MeshTopology(5, 4)
        for node in topo.nodes():
            for d in topo.connected_directions(node):
                other = topo.neighbor(node, d)
                assert topo.neighbor(other, d.opposite) == node


class TestMeshDistance:
    def test_distance_is_manhattan(self):
        topo = MeshTopology(8, 8)
        assert topo.distance(0, 63) == 14
        assert topo.distance(0, 7) == 7

    def test_average_minimal_hops_8x8(self):
        # Known closed form for an 8x8 mesh under uniform traffic:
        # 2 * (n^2-1)/(3n) with n=8 ... ~5.33 for ordered pairs.
        avg = MeshTopology(8, 8).average_minimal_hops()
        assert avg == pytest.approx(16 / 3, rel=1e-9)

    def test_minimal_directions(self):
        topo = MeshTopology(4, 4)
        src = topo.node_at(Coordinate(1, 1))
        dst = topo.node_at(Coordinate(3, 0))
        assert set(topo.minimal_directions(src, dst)) == {
            Direction.EAST,
            Direction.SOUTH,
        }
        assert topo.minimal_directions(src, src) == []

    @given(
        width=st.integers(min_value=2, max_value=8),
        height=st.integers(min_value=2, max_value=8),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_minimal_directions_reduce_distance(self, width, height, data):
        topo = MeshTopology(width, height)
        src = data.draw(st.integers(min_value=0, max_value=topo.num_nodes - 1))
        dst = data.draw(st.integers(min_value=0, max_value=topo.num_nodes - 1))
        if src == dst:
            assert topo.minimal_directions(src, dst) == []
            return
        dirs = topo.minimal_directions(src, dst)
        assert dirs
        for d in dirs:
            nxt = topo.neighbor(src, d)
            assert nxt is not None
            assert topo.distance(nxt, dst) == topo.distance(src, dst) - 1


class TestTorus:
    def test_wraparound_neighbors(self):
        topo = TorusTopology(4, 4)
        west_edge = topo.node_at(Coordinate(0, 1))
        assert topo.neighbor(west_edge, Direction.WEST) == topo.node_at(
            Coordinate(3, 1)
        )
        south_edge = topo.node_at(Coordinate(2, 0))
        assert topo.neighbor(south_edge, Direction.SOUTH) == topo.node_at(
            Coordinate(2, 3)
        )

    def test_no_edges(self):
        topo = TorusTopology(4, 4)
        for node in topo.nodes():
            assert topo.edge_directions(node) == []

    def test_wrap_distance(self):
        topo = TorusTopology(8, 8)
        assert topo.distance(0, 7) == 1  # wraps in x
        assert topo.distance(0, 56) == 1  # wraps in y

    def test_minimal_directions_prefer_wrap(self):
        topo = TorusTopology(8, 1)
        dirs = topo.minimal_directions(0, 7)
        assert dirs == [Direction.WEST]

    def test_equidistant_offers_both(self):
        topo = TorusTopology(4, 1)
        dirs = topo.minimal_directions(0, 2)
        assert set(dirs) == {Direction.EAST, Direction.WEST}
