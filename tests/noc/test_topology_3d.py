"""Tests for the dimension-agnostic topology core: 3D meshes/tori,
per-link TSV latency, pillar enumeration and the distance memo."""

import pytest

from repro.experiments.degradation import mesh_links, pillar_groups
from repro.noc.flit import Flit
from repro.noc.routing import XYRouting
from repro.types import FlitType
from repro.noc.topology import (
    DEFAULT_TSV_LATENCY,
    GraphTopology,
    Mesh3D,
    MeshTopology,
    Torus3D,
    TorusTopology,
    make_topology,
)
from repro.types import Coordinate, Direction


class TestMesh3DBasics:
    def test_dimensions_and_ports(self):
        topo = Mesh3D(4, 3, 2)
        assert topo.shape == (4, 3, 2)
        assert topo.ndim == 3
        assert topo.num_nodes == 24
        assert topo.num_ports == 7

    def test_2d_shape_constructor_matches_legacy(self):
        legacy = MeshTopology(5, 3)
        shaped = MeshTopology(shape=(5, 3))
        assert legacy.shape == shaped.shape == (5, 3)
        assert legacy.num_ports == shaped.num_ports == 5
        assert list(legacy.nodes()) == list(shaped.nodes())

    def test_row_major_x_fastest_layout(self):
        topo = Mesh3D(3, 3, 3)
        assert topo.coordinates_of(0) == Coordinate(0, 0, 0)
        assert topo.coordinates_of(1) == Coordinate(1, 0, 0)
        assert topo.coordinates_of(3) == Coordinate(0, 1, 0)
        # Layer z occupies the contiguous block [z*w*h, (z+1)*w*h).
        assert topo.coordinates_of(9) == Coordinate(0, 0, 1)
        assert topo.coordinates_of(26) == Coordinate(2, 2, 2)

    def test_coordinate_roundtrip(self):
        topo = Mesh3D(3, 4, 2)
        for node in topo.nodes():
            assert topo.node_at(topo.coordinates_of(node)) == node

    def test_vertical_neighbors(self):
        topo = Mesh3D(3, 3, 3)
        mid = topo.node_at(Coordinate(1, 1, 1))
        assert topo.neighbor(mid, Direction.UP) == topo.node_at(
            Coordinate(1, 1, 2)
        )
        assert topo.neighbor(mid, Direction.DOWN) == topo.node_at(
            Coordinate(1, 1, 0)
        )
        bottom = topo.node_at(Coordinate(1, 1, 0))
        assert topo.neighbor(bottom, Direction.DOWN) is None

    def test_interior_node_has_six_connected_directions(self):
        topo = Mesh3D(3, 3, 3)
        mid = topo.node_at(Coordinate(1, 1, 1))
        assert set(topo.connected_directions(mid)) == {
            Direction.NORTH,
            Direction.EAST,
            Direction.SOUTH,
            Direction.WEST,
            Direction.UP,
            Direction.DOWN,
        }

    def test_distance_is_3d_manhattan(self):
        topo = Mesh3D(4, 4, 4)
        a = topo.node_at(Coordinate(0, 0, 0))
        b = topo.node_at(Coordinate(3, 2, 1))
        assert topo.distance(a, b) == 6


class TestTorus3D:
    def test_vertical_wraparound(self):
        topo = Torus3D(4, 4, 4)
        top = topo.node_at(Coordinate(1, 1, 3))
        assert topo.neighbor(top, Direction.UP) == topo.node_at(
            Coordinate(1, 1, 0)
        )

    def test_wrap_distance(self):
        topo = Torus3D(4, 4, 4)
        a = topo.node_at(Coordinate(0, 0, 0))
        b = topo.node_at(Coordinate(0, 0, 3))
        assert topo.distance(a, b) == 1


class TestLinkLatency:
    def test_default_is_unit_everywhere_in_2d(self):
        topo = MeshTopology(4, 4)
        for node in topo.nodes():
            for direction in topo.connected_directions(node):
                assert topo.link_latency(node, direction) == 1

    def test_tsv_axis_is_slower(self):
        assert DEFAULT_TSV_LATENCY == (1, 1, 2)
        topo = Mesh3D(3, 3, 3)  # defaults to DEFAULT_TSV_LATENCY
        mid = topo.node_at(Coordinate(1, 1, 1))
        assert topo.link_latency(mid, Direction.EAST) == 1
        assert topo.link_latency(mid, Direction.NORTH) == 1
        assert topo.link_latency(mid, Direction.UP) == 2
        assert topo.link_latency(mid, Direction.DOWN) == 2

    def test_uniform_int_spec(self):
        topo = MeshTopology(shape=(3, 3, 3), link_latency=3)
        mid = topo.node_at(Coordinate(1, 1, 1))
        assert topo.link_latency(mid, Direction.WEST) == 3
        assert topo.link_latency(mid, Direction.UP) == 3

    def test_make_topology_factory(self):
        assert isinstance(make_topology("mesh3d", (3, 3, 3)), MeshTopology)
        assert isinstance(make_topology("torus3d", (4, 4, 4)), TorusTopology)
        with pytest.raises(ValueError):
            make_topology("hypercube", (2, 2))


def _header(dst: int) -> Flit:
    return Flit(0, 0, FlitType.HEAD, src=0, dst=dst)


class TestDimensionOrderedRouting3D:
    def test_routes_x_then_y_then_z(self):
        topo = Mesh3D(3, 3, 3)
        xy = XYRouting()
        src = topo.node_at(Coordinate(0, 0, 0))
        dst = topo.node_at(Coordinate(2, 2, 2))
        hops = []
        node = src
        while node != dst:
            (direction,) = xy.candidates(topo, node, _header(dst))
            hops.append(direction)
            node = topo.neighbor(node, direction)
        assert hops == [
            Direction.EAST,
            Direction.EAST,
            Direction.NORTH,
            Direction.NORTH,
            Direction.UP,
            Direction.UP,
        ]

    def test_every_pair_terminates_minimally(self):
        topo = Mesh3D(3, 3, 3)
        xy = XYRouting()
        for src in topo.nodes():
            for dst in topo.nodes():
                if src == dst:
                    continue
                node, hops = src, 0
                while node != dst:
                    (direction,) = xy.candidates(topo, node, _header(dst))
                    node = topo.neighbor(node, direction)
                    hops += 1
                assert hops == topo.distance(src, dst)


class TestPillarGroups:
    def test_one_group_per_column_covering_every_tsv(self):
        shape = (3, 3, 3)
        groups = pillar_groups(shape)
        assert len(groups) == 9  # one per (x, y) column
        # Each group: UP at z=0,1 and DOWN at z=1,2 -> 4 directed links.
        assert all(len(g) == 4 for g in groups)
        vertical = {
            (node, direction)
            for node, direction in mesh_links(shape=shape)
            if direction in (Direction.UP, Direction.DOWN)
        }
        flattened = {link for group in groups for link in group}
        assert flattened == vertical

    def test_rejects_2d_shapes(self):
        with pytest.raises(ValueError):
            pillar_groups((4, 4))


class TestGraphTopologyDistanceMemo:
    def test_distance_is_cached_per_source(self):
        mesh = MeshTopology(4, 4)
        adjacency = {
            node: {
                direction: mesh.neighbor(node, direction)
                for direction in mesh.connected_directions(node)
            }
            for node in mesh.nodes()
        }
        topo = GraphTopology(adjacency)
        assert topo.distance(0, 15) == 6
        # One BFS per source: the first query fills the whole row.
        assert topo._distance_cache[0][5] == 2
        assert topo.distance(0, 15) == 6
        assert topo.distance(0, 5) == 2
