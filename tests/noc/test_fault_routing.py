"""Static properties of the fault-aware up*/down* table routing.

Three layers of guarantee, each checked against independent ground truth:

* **Healthy mesh** — every pair routable on a minimal (Manhattan) path,
  so fault-free latency matches XY.
* **Degraded reachability** — after killing links/routers, every pair
  still connected in the *both-alive* undirected graph must be routable,
  and greedy table-following must actually terminate at the destination
  (compared against a plain BFS of the surviving graph).
* **Deadlock freedom** — the channel-dependency graph of the rebuilt
  tables (port-aware traversal) is acyclic for every degraded topology
  tried, exhaustively for single-link kills.
"""

import random
from collections import deque

import pytest

from repro.analysis.cdg import verify_deadlock_freedom
from repro.noc.flit import Flit
from repro.noc.routing import FaultAwareRouting
from repro.noc.topology import MeshTopology
from repro.types import Direction, FlitType


def header(src: int, dst: int) -> Flit:
    return Flit(-1, 0, FlitType.HEAD, src, dst)


def all_links(topology: MeshTopology):
    return [
        (node, direction)
        for node in topology.nodes()
        for direction in topology.connected_directions(node)
        if direction is not Direction.LOCAL
    ]


def walk(fn: FaultAwareRouting, topology: MeshTopology, src: int, dst: int):
    """Follow the tables hop by hop; return the hop count or None."""
    node, in_port = src, Direction.LOCAL
    for hops in range(4 * topology.num_nodes):
        dirs = fn.candidates_from(topology, node, in_port, header(src, dst))
        if not dirs:
            return None
        direction = dirs[0]
        if direction is Direction.LOCAL:
            assert node == dst
            return hops
        node = topology.neighbor(node, direction)
        assert node is not None, "tables steered into a missing link"
        in_port = direction.opposite
    pytest.fail(f"walk {src}->{dst} did not terminate")


def both_alive_components(topology, dead_links, dead_routers):
    """Pair-connectivity ground truth: BFS over bidirectionally-live edges."""
    component = {}
    for root in topology.nodes():
        if root in component or root in dead_routers:
            continue
        component[root] = root
        queue = deque([root])
        while queue:
            node = queue.popleft()
            for direction in topology.connected_directions(node):
                if direction is Direction.LOCAL:
                    continue
                neighbor = topology.neighbor(node, direction)
                if (
                    neighbor is None
                    or neighbor in dead_routers
                    or neighbor in component
                    or (node, direction) in dead_links
                    or (neighbor, direction.opposite) in dead_links
                ):
                    continue
                component[neighbor] = root
                queue.append(neighbor)
    return component


class TestHealthyMesh:
    def test_all_pairs_minimal(self):
        topology = MeshTopology(8, 8)
        fn = FaultAwareRouting(topology)
        for src in topology.nodes():
            for dst in topology.nodes():
                if src == dst:
                    continue
                a = topology.coordinates_of(src)
                b = topology.coordinates_of(dst)
                manhattan = abs(a.x - b.x) + abs(a.y - b.y)
                assert walk(fn, topology, src, dst) == manhattan

    def test_reachable_fraction_is_one(self):
        fn = FaultAwareRouting(MeshTopology(4, 4))
        assert fn.reachable_fraction() == 1.0

    def test_healthy_cdg_is_acyclic(self):
        topology = MeshTopology(8, 8)
        verdict = verify_deadlock_freedom(
            topology, FaultAwareRouting(topology), num_vcs=3
        )
        assert verdict.deadlock_free


class TestSingleLinkKills:
    """Acceptance: any single dead link, 100% of pairs still routable."""

    @pytest.mark.parametrize("width,height", [(5, 5), (8, 8)])
    def test_every_pair_survives_every_single_kill(self, width, height):
        topology = MeshTopology(width, height)
        fn = FaultAwareRouting(topology)
        for dead in all_links(topology):
            fn.rebuild({dead}, set())
            # reachable_fraction counts every ordered pair, so 1.0 means
            # each of them has a routing-table entry.
            assert fn.reachable_fraction() == 1.0

    def test_exhaustive_cdg_and_walks_small_mesh(self):
        topology = MeshTopology(5, 5)
        fn = FaultAwareRouting(topology)
        for dead in all_links(topology):
            fn.rebuild({dead}, set())
            verdict = verify_deadlock_freedom(topology, fn, num_vcs=3)
            assert verdict.deadlock_free, f"cycle after killing {dead}"
            for src in topology.nodes():
                for dst in topology.nodes():
                    if src != dst:
                        assert walk(fn, topology, src, dst) is not None

    def test_detour_stays_short(self):
        topology = MeshTopology(8, 8)
        fn = FaultAwareRouting(topology)
        rng = random.Random(2)
        for dead in rng.sample(all_links(topology), 12):
            fn.rebuild({dead}, set())
            for src in topology.nodes():
                for dst in topology.nodes():
                    if src == dst:
                        continue
                    a = topology.coordinates_of(src)
                    b = topology.coordinates_of(dst)
                    manhattan = abs(a.x - b.x) + abs(a.y - b.y)
                    hops = walk(fn, topology, src, dst)
                    assert hops is not None and hops <= manhattan + 4


class TestMultiKill:
    def test_both_alive_connected_pairs_stay_routable(self):
        topology = MeshTopology(6, 6)
        fn = FaultAwareRouting(topology)
        links = all_links(topology)
        rng = random.Random(7)
        for _ in range(25):
            dead_links = set(rng.sample(links, rng.randint(2, 12)))
            dead_routers = set(rng.sample(range(36), rng.randint(0, 2)))
            fn.rebuild(dead_links, dead_routers)
            verdict = verify_deadlock_freedom(topology, fn, num_vcs=3)
            assert verdict.deadlock_free
            component = both_alive_components(topology, dead_links, dead_routers)
            for src in topology.nodes():
                for dst in topology.nodes():
                    if src == dst:
                        continue
                    connected = (
                        src in component
                        and dst in component
                        and component[src] == component[dst]
                    )
                    if connected:
                        assert fn.is_reachable(src, dst)
                        assert walk(fn, topology, src, dst) is not None
                    elif fn.is_reachable(src, dst):
                        # Half-alive channels may route beyond the
                        # bidirectional core; if the tables claim a route,
                        # it must really arrive.
                        assert walk(fn, topology, src, dst) is not None

    def test_dead_router_is_unreachable(self):
        topology = MeshTopology(4, 4)
        fn = FaultAwareRouting(topology, dead_routers={5})
        for node in topology.nodes():
            if node != 5:
                assert not fn.is_reachable(node, 5)
                assert not fn.is_reachable(5, node)
        assert fn.reachable_fraction() < 1.0

    def test_version_bumps_on_rebuild(self):
        fn = FaultAwareRouting(MeshTopology(3, 3))
        before = fn.version
        fn.rebuild({(0, Direction.EAST)}, set())
        assert fn.version == before + 1
