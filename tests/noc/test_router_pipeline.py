"""Router pipeline behaviour tests: wormhole semantics, credits, timing.

These use tiny scripted networks (via the conftest helpers) so that every
assertion pins a specific architectural behaviour rather than an emergent
statistic.
"""

import pytest

from repro.types import Direction, RoutingAlgorithm, VCState
from tests.conftest import (
    build_network,
    inject_packet,
    run_until_delivered,
    small_noc,
)


class TestSinglePacketDelivery:
    def test_neighbor_delivery(self):
        net = build_network(small_noc(width=2, height=1))
        inject_packet(net, src=0, dst=1)
        cycles = run_until_delivered(net, 1)
        assert net.delivered == 1
        # 4 flits over: NI serialization + pipeline + link + ejection.
        assert cycles < 25

    def test_corner_to_corner(self):
        net = build_network()
        inject_packet(net, src=0, dst=15)
        run_until_delivered(net, 1)
        assert net.delivered == 1

    def test_self_addressed_packet(self):
        # dst == src still goes NI -> router -> NI via the LOCAL port.
        net = build_network(small_noc(width=2, height=2))
        inject_packet(net, src=0, dst=0)
        run_until_delivered(net, 1)
        assert net.delivered == 1

    def test_network_drains_completely(self):
        net = build_network()
        for i in range(8):
            inject_packet(net, src=i, dst=15 - i, packet_id=i)
        run_until_delivered(net, 8)
        net.run_cycles(10)
        assert net.in_flight_flits == 0


class TestPipelineDepthTiming:
    def _latency(self, stages: int) -> float:
        net = build_network(
            small_noc(width=4, height=1, pipeline_stages=stages)
        )
        net.stats.start_measurement()
        inject_packet(net, src=0, dst=3)
        run_until_delivered(net, 1)
        return net.stats.latency.mean

    def test_deeper_pipelines_are_slower_per_hop(self):
        lat = {stages: self._latency(stages) for stages in (1, 2, 3, 4)}
        assert lat[2] <= lat[3] <= lat[4]
        assert lat[1] <= lat[2]
        # Three extra hops at one extra stage each => at least 3 cycles gap.
        assert lat[4] - lat[2] >= 3


class TestWormholeSemantics:
    def test_flits_of_packet_arrive_contiguously_per_vc(self):
        """Wormhole + VC allocation: flits of two packets may interleave on
        a physical link but never within one VC stream."""
        net = build_network(small_noc(width=2, height=1))
        seen = []
        ni = net.interfaces[1]
        original = ni.reassembler.accept

        def spy(flit, num):
            seen.append((flit.packet_id, flit.seq))
            return original(flit, num)

        ni.reassembler.accept = spy  # type: ignore[assignment]
        for i in range(3):
            inject_packet(net, src=0, dst=1, packet_id=i)
        run_until_delivered(net, 3)
        per_packet = {}
        for pid, seq in seen:
            per_packet.setdefault(pid, []).append(seq)
        for pid, seqs in per_packet.items():
            assert seqs == sorted(seqs), f"packet {pid} flits out of order"

    def test_tail_releases_output_vc(self):
        net = build_network(small_noc(width=2, height=1, num_vcs=1))
        inject_packet(net, src=0, dst=1)
        run_until_delivered(net, 1)
        router = net.routers[0]
        for channels in router.outputs:
            for channel in channels:
                assert not channel.is_allocated

    def test_input_vcs_return_to_idle(self):
        net = build_network(small_noc(width=2, height=1))
        inject_packet(net, src=0, dst=1)
        run_until_delivered(net, 1)
        net.run_cycles(5)
        for router in net.routers:
            for port_vcs in router.inputs:
                for ivc in port_vcs:
                    assert ivc.state is VCState.IDLE
                    assert ivc.buffer.is_empty


class TestCreditFlowControl:
    def test_buffers_never_overflow_under_load(self):
        """Credit flow control is what prevents VCBuffer.push from raising;
        saturating a small network exercises it hard."""
        net = build_network(small_noc(width=2, height=2, vc_buffer_depth=2))
        pid = 0
        for cycle in range(300):
            if cycle % 2 == 0:
                for src in range(4):
                    inject_packet(net, src=src, dst=3 - src, packet_id=pid)
                    pid += 1
            net.step()  # OverflowError here means broken credit accounting

    def test_credits_restore_after_drain(self):
        net = build_network(small_noc(width=2, height=1))
        inject_packet(net, src=0, dst=1)
        run_until_delivered(net, 1)
        net.run_cycles(5)
        router = net.routers[0]
        depth = net.config.noc.vc_buffer_depth
        for port in range(4):
            if router.out_links[port] is None:
                continue
            for channel in router.outputs[port]:
                assert channel.credits == depth


class TestRoutingAlgorithmsEndToEnd:
    @pytest.mark.parametrize(
        "algorithm",
        [RoutingAlgorithm.XY, RoutingAlgorithm.WEST_FIRST],
    )
    def test_all_pairs_small_mesh(self, algorithm):
        net = build_network(small_noc(width=3, height=3, routing=algorithm))
        pid = 0
        for src in range(9):
            for dst in range(9):
                if src != dst:
                    inject_packet(net, src=src, dst=dst, packet_id=pid)
                    pid += 1
        run_until_delivered(net, pid, max_cycles=20000)
        assert net.delivered == pid

    def test_source_routed_path_is_followed(self):
        net = build_network(
            small_noc(width=3, height=3, routing=RoutingAlgorithm.SOURCE)
        )
        # A deliberately non-minimal route: east, east, north, west.
        route = [Direction.EAST, Direction.EAST, Direction.NORTH, Direction.WEST]
        packet = inject_packet(net, src=0, dst=4, source_route=route)
        run_until_delivered(net, 1)
        assert net.delivered == 1

    def test_hops_match_minimal_distance_xy(self):
        net = build_network()
        net.stats.start_measurement()
        inject_packet(net, src=0, dst=15)  # distance 6 on a 4x4
        run_until_delivered(net, 1)
        # hops = router-to-router traversals = manhattan distance.
        assert net.stats.hops.mean == net.topology.distance(0, 15)
