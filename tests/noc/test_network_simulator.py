"""Network assembly and simulation-driver tests."""

import pytest

from repro.config import FaultConfig, SimulationConfig, WorkloadConfig
from repro.noc.network import Network
from repro.noc.simulator import Simulator, run_simulation
from repro.traffic.injection import BernoulliInjection, PeriodicInjection
from tests.conftest import quick_workload, small_noc


def sim_config(**workload_overrides) -> SimulationConfig:
    return SimulationConfig(
        noc=small_noc(),
        workload=quick_workload(**workload_overrides),
    )


class TestNetworkWiring:
    def test_link_counts(self):
        net = Network(SimulationConfig(noc=small_noc()))
        # 4x4 mesh: 2 * (3*4 + 4*3) = 48 unidirectional mesh links
        # plus 2 local links per node.
        mesh_links = [l for l in net.links if not l.is_local]
        local_links = [l for l in net.links if l.is_local]
        assert len(mesh_links) == 48
        assert len(local_links) == 32

    def test_edge_ports_unwired(self):
        net = Network(SimulationConfig(noc=small_noc()))
        corner = net.routers[0]  # (0,0): no SOUTH, no WEST
        from repro.types import Direction

        assert corner.out_links[Direction.SOUTH] is None
        assert corner.out_links[Direction.WEST] is None
        assert corner.out_links[Direction.NORTH] is not None
        assert int(Direction.SOUTH) not in corner.valid_out_ports

    def test_initial_credits_match_buffer_depth(self):
        net = Network(SimulationConfig(noc=small_noc(vc_buffer_depth=6)))
        router = net.routers[5]
        from repro.types import Direction

        for port in range(4):
            if router.out_links[port] is not None:
                for channel in router.outputs[port]:
                    assert channel.credits == 6


class TestSimulatorRun:
    def test_terminates_on_message_count(self):
        result = run_simulation(sim_config(num_messages=150, warmup_messages=30))
        assert result.packets_delivered >= 150
        assert not result.hit_cycle_limit

    def test_cycle_limit_guard(self):
        result = run_simulation(
            sim_config(num_messages=10_000, warmup_messages=10, max_cycles=50)
        )
        assert result.hit_cycle_limit
        assert result.cycles <= 51

    def test_warmup_excluded_from_measurement(self):
        result = run_simulation(sim_config(num_messages=200, warmup_messages=100))
        assert result.measured_packets <= result.packets_delivered - 100 + 5

    def test_latency_above_zero_load_floor(self):
        result = run_simulation(sim_config(num_messages=200, warmup_messages=50))
        # Minimum: pipeline + serialization of a 4-flit packet; average path
        # on a 4x4 mesh is ~2.67 hops.
        assert result.avg_latency > 5.0
        assert result.avg_hops == pytest.approx(2.67, abs=1.0)

    def test_reproducible_with_same_seed(self):
        a = run_simulation(sim_config(num_messages=150, warmup_messages=30))
        b = run_simulation(sim_config(num_messages=150, warmup_messages=30))
        assert a.avg_latency == b.avg_latency
        assert a.counters == b.counters

    def test_different_seed_differs(self):
        a = run_simulation(sim_config(num_messages=150, warmup_messages=30, seed=1))
        b = run_simulation(sim_config(num_messages=150, warmup_messages=30, seed=2))
        assert a.avg_latency != b.avg_latency

    def test_energy_reported_when_enabled(self):
        result = run_simulation(sim_config(num_messages=150, warmup_messages=30))
        assert result.energy_per_packet_nj > 0

    def test_energy_zero_when_disabled(self):
        config = sim_config(num_messages=150, warmup_messages=30).replace(
            collect_power=False
        )
        assert run_simulation(config).energy_per_packet_nj == 0.0

    def test_throughput_tracks_injection_at_low_load(self):
        result = run_simulation(
            sim_config(num_messages=400, warmup_messages=50, injection_rate=0.1)
        )
        assert result.throughput_flits_per_node_cycle == pytest.approx(0.1, rel=0.25)

    def test_summary_lines(self):
        result = run_simulation(sim_config(num_messages=120, warmup_messages=20))
        text = result.summary_lines()
        assert "avg latency" in text and "packets delivered" in text


class TestInjectionProcesses:
    @pytest.mark.parametrize("process_cls", [PeriodicInjection, BernoulliInjection])
    def test_long_run_rate_is_exact(self, process_cls):
        import random

        process = process_cls(num_nodes=4, rate=0.3, flits_per_packet=4)
        rng = random.Random(3)
        cycles = 8000
        fires = sum(
            process.fires(node, cycle, rng)
            for cycle in range(cycles)
            for node in range(4)
        )
        expected = 4 * cycles * 0.3 / 4
        assert fires == pytest.approx(expected, rel=0.1)

    def test_periodic_phases_desynchronized(self):
        import random

        process = PeriodicInjection(num_nodes=16, rate=0.25, flits_per_packet=4)
        rng = random.Random(9)
        first_cycle_fires = sum(process.fires(n, 0, rng) for n in range(16))
        assert first_cycle_fires < 16  # not in lockstep

    def test_invalid_rates_rejected(self):
        with pytest.raises(ValueError):
            PeriodicInjection(4, 0.0, 4)
        with pytest.raises(ValueError):
            BernoulliInjection(4, 0.5, 0)


class TestLatencyVsLoad:
    def test_latency_increases_with_injection_rate(self):
        lats = []
        for rate in (0.05, 0.35):
            result = run_simulation(
                sim_config(num_messages=400, warmup_messages=100, injection_rate=rate)
            )
            lats.append(result.avg_latency)
        assert lats[1] > lats[0]
