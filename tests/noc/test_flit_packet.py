"""Tests for flits, packets and destination-side reassembly."""

import pytest

from repro.noc.flit import Flit
from repro.noc.packet import Packet, PacketReassembler, packet_is_corrupted
from repro.types import Corruption, Direction, FlitType


class TestFlit:
    def test_corruption_accumulates_monotonically(self):
        flit = Flit(0, 0, FlitType.BODY, 0, 1)
        flit.corrupt(Corruption.SINGLE)
        assert flit.corruption is Corruption.SINGLE
        flit.corrupt(Corruption.MULTI)
        assert flit.corruption is Corruption.MULTI
        flit.corrupt(Corruption.SINGLE)  # cannot downgrade
        assert flit.corruption is Corruption.MULTI

    def test_clear_single_error(self):
        flit = Flit(0, 0, FlitType.BODY, 0, 1)
        flit.corrupt(Corruption.SINGLE)
        assert flit.clear_single_error()
        assert flit.corruption is Corruption.NONE

    def test_multi_error_not_clearable(self):
        flit = Flit(0, 0, FlitType.BODY, 0, 1)
        flit.corrupt(Corruption.MULTI)
        assert not flit.clear_single_error()
        assert flit.corruption is Corruption.MULTI

    def test_true_dst_preserved(self):
        flit = Flit(0, 0, FlitType.HEAD, 0, dst=5)
        flit.dst = 9  # header corruption rewrites the routed destination
        assert flit.true_dst == 5

    def test_slots_prevent_arbitrary_attributes(self):
        flit = Flit(0, 0, FlitType.HEAD, 0, 1)
        with pytest.raises(AttributeError):
            flit.extra = 1  # type: ignore[attr-defined]


class TestPacket:
    def test_make_flits_types(self):
        packet = Packet(1, src=0, dst=5, num_flits=4, injection_cycle=10)
        flits = packet.make_flits()
        assert [f.ftype for f in flits] == [
            FlitType.HEAD,
            FlitType.BODY,
            FlitType.BODY,
            FlitType.TAIL,
        ]
        assert all(f.injection_cycle == 10 for f in flits)
        assert [f.seq for f in flits] == [0, 1, 2, 3]

    def test_single_flit_packet(self):
        packet = Packet(1, src=0, dst=5, num_flits=1, injection_cycle=0)
        (flit,) = packet.make_flits()
        assert flit.ftype is FlitType.HEAD_TAIL
        assert flit.is_head and flit.is_tail

    def test_two_flit_packet(self):
        flits = Packet(1, 0, 5, num_flits=2, injection_cycle=0).make_flits()
        assert [f.ftype for f in flits] == [FlitType.HEAD, FlitType.TAIL]

    def test_retransmission_copies_are_independent(self):
        packet = Packet(1, src=0, dst=5, num_flits=2, injection_cycle=3)
        first = packet.make_flits()
        first[0].corrupt(Corruption.MULTI)
        second = packet.make_flits()
        assert second[0].corruption is Corruption.NONE
        assert second[0].injection_cycle == 3  # latency keeps original origin

    def test_source_route_copies_are_independent(self):
        packet = Packet(
            1, 0, 5, num_flits=2, injection_cycle=0,
            source_route=[Direction.EAST, Direction.NORTH],
        )
        a, b = packet.make_flits()[0], packet.make_flits()[0]
        a.source_route.pop(0)
        assert len(b.source_route) == 2


class TestReassembler:
    def _flit(self, pid, seq, num=4):
        ftype = FlitType.HEAD if seq == 0 else (
            FlitType.TAIL if seq == num - 1 else FlitType.BODY
        )
        return Flit(pid, seq, ftype, 0, 1)

    def test_in_order_assembly(self):
        asm = PacketReassembler()
        for seq in range(3):
            result = asm.accept(self._flit(7, seq, 4), 4)
            assert result is None
        result = asm.accept(self._flit(7, 3, 4), 4)
        assert result is not None
        assert [f.seq for f in result] == [0, 1, 2, 3]
        assert asm.incomplete_packets == 0

    def test_interleaved_packets(self):
        asm = PacketReassembler()
        asm.accept(self._flit(1, 0), 4)
        asm.accept(self._flit(2, 0), 4)
        assert asm.incomplete_packets == 2
        for seq in range(1, 4):
            asm.accept(self._flit(1, seq), 4)
        assert asm.incomplete_packets == 1
        assert set(asm.incomplete_ids()) == {2}

    def test_duplicate_flit_overwrites(self):
        # Stray copies from undetected multicast faults must not complete a
        # packet early or corrupt the count.
        asm = PacketReassembler()
        asm.accept(self._flit(1, 0), 4)
        asm.accept(self._flit(1, 0), 4)
        assert asm.incomplete_packets == 1

    def test_drop(self):
        asm = PacketReassembler()
        asm.accept(self._flit(1, 0), 4)
        asm.accept(self._flit(1, 1), 4)
        assert asm.drop(1) == 2
        assert asm.incomplete_packets == 0
        assert asm.drop(99) == 0


class TestPacketIsCorrupted:
    def test_clean(self):
        flits = Packet(1, 0, 5, 4, 0).make_flits()
        assert not packet_is_corrupted(flits)

    def test_any_flit_corrupt(self):
        flits = Packet(1, 0, 5, 4, 0).make_flits()
        flits[2].corrupt(Corruption.SINGLE)
        assert packet_is_corrupted(flits)
