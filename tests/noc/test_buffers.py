"""Tests for the input VC buffers (transmission buffers)."""

import pytest

from repro.noc.buffers import VCBuffer
from repro.noc.flit import Flit
from repro.types import FlitType


def make_flit(seq: int = 0) -> Flit:
    return Flit(packet_id=1, seq=seq, ftype=FlitType.BODY, src=0, dst=1)


class TestFifoBehaviour:
    def test_starts_empty(self):
        buf = VCBuffer(4)
        assert buf.is_empty and not buf.is_full
        assert buf.peek() is None
        assert buf.free_slots == 4

    def test_fifo_order(self):
        buf = VCBuffer(4)
        flits = [make_flit(i) for i in range(3)]
        for f in flits:
            buf.push(f)
        assert [buf.pop().seq for _ in range(3)] == [0, 1, 2]

    def test_overflow_raises(self):
        buf = VCBuffer(2)
        buf.push(make_flit(0))
        buf.push(make_flit(1))
        assert buf.is_full
        with pytest.raises(OverflowError):
            buf.push(make_flit(2))

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            VCBuffer(1).pop()

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            VCBuffer(0)

    def test_pop_with_origin_reports_fifo(self):
        buf = VCBuffer(2)
        buf.push(make_flit(0))
        _, from_fifo = buf.pop_with_origin()
        assert from_fifo


class TestRollbackQueue:
    def test_rollback_takes_precedence(self):
        buf = VCBuffer(4)
        buf.push(make_flit(10))
        returned = [make_flit(0), make_flit(1)]
        buf.push_rollback(returned)
        assert buf.peek().seq == 0
        flit, from_fifo = buf.pop_with_origin()
        assert flit.seq == 0 and not from_fifo
        assert buf.pop().seq == 1
        assert buf.pop().seq == 10

    def test_rollback_does_not_consume_credit_slots(self):
        buf = VCBuffer(2)
        buf.push(make_flit(0))
        buf.push(make_flit(1))
        buf.push_rollback([make_flit(100), make_flit(101), make_flit(102)])
        # FIFO is still full, but rollbacks sit in retransmission-buffer
        # slots, so occupancy (the credit-counted figure) is unchanged.
        assert buf.occupancy == 2
        assert buf.total_flits == 5
        assert buf.is_full

    def test_repeated_rollback_preserves_order(self):
        buf = VCBuffer(4)
        buf.push_rollback([make_flit(2)])
        buf.push_rollback([make_flit(0), make_flit(1)])
        assert [buf.pop().seq for _ in range(3)] == [0, 1, 2]

    def test_clear_drops_everything(self):
        buf = VCBuffer(4)
        buf.push(make_flit(0))
        buf.push_rollback([make_flit(1)])
        assert buf.clear() == 2
        assert buf.is_empty

    def test_iteration_order(self):
        buf = VCBuffer(4)
        buf.push(make_flit(5))
        buf.push_rollback([make_flit(1)])
        assert [f.seq for f in buf] == [1, 5]
        assert len(buf) == 2
