"""Tests for the separable VC and switch allocators."""

from repro.noc.allocators import SwitchAllocator, VCAllocator


class TestVCAllocator:
    def test_uncontested_request_granted(self):
        va = VCAllocator(num_ports=5, num_vcs=2)
        grants = va.allocate(
            requests={(0, 0): [(1, 0), (1, 1)]},
            available={(1, 0): True, (1, 1): True},
        )
        assert (0, 0) in grants
        assert grants[(0, 0)][0] == 1

    def test_unavailable_outputs_not_granted(self):
        va = VCAllocator(5, 2)
        grants = va.allocate(
            requests={(0, 0): [(1, 0), (1, 1)]},
            available={(1, 0): False, (1, 1): False},
        )
        assert grants == {}

    def test_contested_output_has_single_winner(self):
        va = VCAllocator(5, 2)
        requests = {(0, 0): [(2, 0)], (1, 0): [(2, 0)], (3, 1): [(2, 0)]}
        grants = va.allocate(requests, available={(2, 0): True})
        assert len(grants) == 1
        assert list(grants.values()) == [(2, 0)]

    def test_no_output_vc_double_granted(self):
        va = VCAllocator(5, 3)
        requests = {
            (p, v): [(2, vc) for vc in range(3)] for p in (0, 1, 3) for v in range(3)
        }
        available = {(2, vc): True for vc in range(3)}
        grants = va.allocate(requests, available)
        granted_outputs = list(grants.values())
        assert len(granted_outputs) == len(set(granted_outputs))
        # A separable allocator is not a maximum matcher (stage-1 picks may
        # collide), but it must grant at least one and never over-grant.
        assert 1 <= len(grants) <= 3

    def test_disjoint_requests_all_granted(self):
        va = VCAllocator(5, 2)
        requests = {(0, 0): [(1, 0)], (2, 1): [(3, 1)]}
        available = {(1, 0): True, (3, 1): True}
        grants = va.allocate(requests, available)
        assert grants == {(0, 0): (1, 0), (2, 1): (3, 1)}

    def test_losers_can_win_next_round(self):
        va = VCAllocator(5, 1)
        requests = {(0, 0): [(2, 0)], (1, 0): [(2, 0)]}
        first = va.allocate(requests, {(2, 0): True})
        (winner,) = first
        second = va.allocate(
            {k: v for k, v in requests.items() if k != winner}, {(2, 0): True}
        )
        assert set(second) == set(requests) - {winner}

    def test_input_rotation_spreads_choices(self):
        va = VCAllocator(5, 2)
        seen = set()
        for _ in range(4):
            grants = va.allocate(
                requests={(0, 0): [(1, 0), (1, 1)]},
                available={(1, 0): True, (1, 1): True},
            )
            seen.add(grants[(0, 0)])
        assert seen == {(1, 0), (1, 1)}


class TestSwitchAllocator:
    def test_single_bid_granted(self):
        sa = SwitchAllocator(5, 3)
        assert sa.allocate({(0, 1): 2}) == {(0, 1): 2}

    def test_one_grant_per_input_port(self):
        sa = SwitchAllocator(5, 3)
        grants = sa.allocate({(0, 0): 1, (0, 1): 2, (0, 2): 3})
        assert len(grants) == 1

    def test_one_grant_per_output_port(self):
        sa = SwitchAllocator(5, 3)
        grants = sa.allocate({(0, 0): 2, (1, 0): 2, (3, 0): 2})
        assert len(grants) == 1
        assert list(grants.values()) == [2]

    def test_disjoint_bids_all_granted(self):
        sa = SwitchAllocator(5, 2)
        bids = {(0, 0): 1, (1, 0): 2, (2, 0): 3}
        assert sa.allocate(bids) == bids

    def test_fairness_across_contending_inputs(self):
        sa = SwitchAllocator(5, 1)
        bids = {(0, 0): 2, (1, 0): 2}
        winners = [next(iter(sa.allocate(bids))) for _ in range(4)]
        assert set(winners) == {(0, 0), (1, 0)}

    def test_empty_bids(self):
        assert SwitchAllocator(5, 3).allocate({}) == {}

    def test_max_matching_throughput(self):
        # 5 inputs each wanting a distinct output: all must be granted.
        sa = SwitchAllocator(5, 2)
        bids = {(p, 0): (p + 1) % 5 for p in range(5)}
        assert len(sa.allocate(bids)) == 5
