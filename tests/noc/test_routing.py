"""Tests for routing functions and the XY misroute-detection invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.flit import Flit
from repro.noc.routing import (
    FullyAdaptiveRouting,
    SourceRouting,
    WestFirstRouting,
    XYRouting,
    make_routing_function,
    xy_arrival_is_legal,
)
from repro.noc.topology import MeshTopology
from repro.types import Coordinate, Direction, FlitType, RoutingAlgorithm

TOPO = MeshTopology(8, 8)


def header(dst: int, route=None) -> Flit:
    return Flit(0, 0, FlitType.HEAD, src=0, dst=dst, source_route=route)


class TestXYRouting:
    def test_x_first(self):
        xy = XYRouting()
        src = TOPO.node_at(Coordinate(1, 1))
        dst = TOPO.node_at(Coordinate(4, 5))
        assert xy.candidates(TOPO, src, header(dst)) == [Direction.EAST]

    def test_y_after_x_aligned(self):
        xy = XYRouting()
        src = TOPO.node_at(Coordinate(4, 1))
        dst = TOPO.node_at(Coordinate(4, 5))
        assert xy.candidates(TOPO, src, header(dst)) == [Direction.NORTH]

    def test_ejection_at_destination(self):
        xy = XYRouting()
        assert xy.candidates(TOPO, 9, header(9)) == [Direction.LOCAL]

    def test_full_path_is_minimal_and_x_then_y(self):
        xy = XYRouting()
        src = TOPO.node_at(Coordinate(6, 2))
        dst = TOPO.node_at(Coordinate(1, 7))
        current, hops, seen_y = src, 0, False
        while current != dst:
            (d,) = xy.candidates(TOPO, current, header(dst))
            if d in (Direction.NORTH, Direction.SOUTH):
                seen_y = True
            else:
                assert not seen_y, "X movement after Y violates XY"
            current = TOPO.neighbor(current, d)
            hops += 1
        assert hops == TOPO.distance(src, dst)


class TestWestFirst:
    def test_west_destination_forces_west(self):
        wf = WestFirstRouting()
        src = TOPO.node_at(Coordinate(5, 5))
        dst = TOPO.node_at(Coordinate(1, 2))
        assert wf.candidates(TOPO, src, header(dst)) == [Direction.WEST]

    def test_non_west_is_adaptive(self):
        wf = WestFirstRouting()
        src = TOPO.node_at(Coordinate(1, 1))
        dst = TOPO.node_at(Coordinate(4, 4))
        assert set(wf.candidates(TOPO, src, header(dst))) == {
            Direction.EAST,
            Direction.NORTH,
        }

    def test_never_offers_turn_into_west_alongside_others(self):
        """West-first invariant: whenever WEST is needed it is the only
        candidate, so no turn into west can ever occur mid-route."""
        wf = WestFirstRouting()
        for src in TOPO.nodes():
            for dst in TOPO.nodes():
                if src == dst:
                    continue
                dirs = wf.candidates(TOPO, src, header(dst))
                if Direction.WEST in dirs:
                    assert dirs == [Direction.WEST]


class TestFullyAdaptive:
    def test_offers_all_minimal_directions(self):
        fa = FullyAdaptiveRouting()
        src = TOPO.node_at(Coordinate(2, 2))
        dst = TOPO.node_at(Coordinate(0, 0))
        assert set(fa.candidates(TOPO, src, header(dst))) == {
            Direction.WEST,
            Direction.SOUTH,
        }

    @given(
        src=st.integers(min_value=0, max_value=63),
        dst=st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=100, deadline=None)
    def test_candidates_always_minimal(self, src, dst):
        fa = FullyAdaptiveRouting()
        flit = header(dst)
        dirs = fa.candidates(TOPO, src, flit)
        if src == dst:
            assert dirs == [Direction.LOCAL]
            return
        for d in dirs:
            nxt = TOPO.neighbor(src, d)
            assert TOPO.distance(nxt, dst) == TOPO.distance(src, dst) - 1


class TestSourceRouting:
    def test_follows_attached_route(self):
        sr = SourceRouting()
        flit = header(5, route=[Direction.EAST, Direction.NORTH])
        assert sr.candidates(TOPO, 0, flit) == [Direction.EAST]
        SourceRouting.consume_hop(flit)
        assert sr.candidates(TOPO, 1, flit) == [Direction.NORTH]
        SourceRouting.consume_hop(flit)
        assert sr.candidates(TOPO, 9, flit) == [Direction.LOCAL]


class TestFactory:
    @pytest.mark.parametrize(
        "algorithm,cls",
        [
            (RoutingAlgorithm.XY, XYRouting),
            (RoutingAlgorithm.WEST_FIRST, WestFirstRouting),
            (RoutingAlgorithm.FULLY_ADAPTIVE, FullyAdaptiveRouting),
            (RoutingAlgorithm.SOURCE, SourceRouting),
        ],
    )
    def test_factory(self, algorithm, cls):
        assert isinstance(make_routing_function(algorithm), cls)


class TestXYLegality:
    """The Section 4.2 misroute detector must (a) never flag a correct XY
    path and (b) flag every possible single misroute."""

    def test_injection_always_legal(self):
        assert xy_arrival_is_legal(TOPO, 0, None, 63)
        assert xy_arrival_is_legal(TOPO, 0, Direction.LOCAL, 63)

    def test_arrival_at_destination_legal(self):
        assert xy_arrival_is_legal(TOPO, 5, Direction.WEST, 5)

    @given(
        src=st.integers(min_value=0, max_value=63),
        dst=st.integers(min_value=0, max_value=63),
    )
    @settings(max_examples=120, deadline=None)
    def test_no_false_positives_on_correct_paths(self, src, dst):
        xy = XYRouting()
        current = src
        flit = header(dst)
        while current != dst:
            (d,) = xy.candidates(TOPO, current, flit)
            nxt = TOPO.neighbor(current, d)
            arrival_port = d.opposite  # the port the flit arrives on at nxt
            assert xy_arrival_is_legal(TOPO, nxt, arrival_port, dst)
            current = nxt

    @given(
        src=st.integers(min_value=0, max_value=63),
        dst=st.integers(min_value=0, max_value=63),
        data=st.data(),
    )
    @settings(max_examples=120, deadline=None)
    def test_every_misroute_is_caught(self, src, dst, data):
        """From any point on a correct XY path, any wrong (but physically
        connected, non-local) output direction produces an arrival the next
        router flags as illegal — so RT logic upsets cannot escape."""
        if src == dst:
            return
        xy = XYRouting()
        # Walk some prefix of the correct path.
        current = src
        flit = header(dst)
        prefix = data.draw(st.integers(min_value=0, max_value=TOPO.distance(src, dst) - 1))
        for _ in range(prefix):
            (d,) = xy.candidates(TOPO, current, flit)
            current = TOPO.neighbor(current, d)
        if current == dst:
            return
        (correct,) = xy.candidates(TOPO, current, flit)
        for wrong in TOPO.connected_directions(current):
            if wrong == correct:
                continue
            misrouted_to = TOPO.neighbor(current, wrong)
            arrival_port = wrong.opposite
            assert not xy_arrival_is_legal(TOPO, misrouted_to, arrival_port, dst), (
                f"misroute {current}->{misrouted_to} toward {dst} undetected"
            )
