"""Dynamic behaviour of permanent faults inside the simulated network.

Every scenario runs with ``invariant_checks=True``, so the per-cycle
sanitizer (flit conservation including ``permanent_fault_flits_dropped``,
allocation bijectivity with orphaned wormholes, VC state legality) audits
each cycle of the teardown — the strongest evidence the component-death
bookkeeping is exact.
"""

import dataclasses
import warnings

import pytest

from repro.config import FaultConfig, NoCConfig, SimulationConfig, WorkloadConfig
from repro.faults.permanent import PermanentFault, PermanentFaultSchedule
from repro.noc.network import Network
from repro.noc.routing import FaultAwareRouting
from repro.noc.simulator import run_simulation
from repro.types import Direction, RoutingAlgorithm


def config_with(
    schedule: PermanentFaultSchedule,
    *,
    width: int = 4,
    height: int = 4,
    routing: RoutingAlgorithm = RoutingAlgorithm.XY,
    rate: float = 0.12,
    messages: int = 400,
    **overrides,
) -> SimulationConfig:
    config = SimulationConfig(
        noc=NoCConfig(shape=(width, height), routing=routing),
        faults=dataclasses.replace(FaultConfig.fault_free(), permanent=schedule),
        workload=WorkloadConfig(
            injection_rate=rate,
            num_messages=messages,
            warmup_messages=messages // 8,
            max_cycles=100_000,
            seed=9,
        ),
        invariant_checks=True,
    )
    return config.replace(**overrides) if overrides else config


class TestRoutingSubstitution:
    def test_xy_becomes_fault_aware_when_scheduled(self):
        schedule = PermanentFaultSchedule.of(
            PermanentFault("link", 5, Direction.EAST)
        )
        net = Network(config_with(schedule))
        assert isinstance(net.routing_fn, FaultAwareRouting)
        assert net.degraded

    def test_no_substitution_without_schedule(self):
        net = Network(config_with(PermanentFaultSchedule.empty()))
        assert not isinstance(net.routing_fn, FaultAwareRouting)
        assert not net.degraded

    def test_non_reroutable_routing_warns(self):
        schedule = PermanentFaultSchedule.of(
            PermanentFault("link", 5, Direction.EAST)
        )
        with pytest.warns(UserWarning, match="NOC013"):
            Network(config_with(schedule, routing=RoutingAlgorithm.WEST_FIRST))

    def test_fault_aware_routing_does_not_warn(self):
        schedule = PermanentFaultSchedule.of(
            PermanentFault("link", 5, Direction.EAST)
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            Network(config_with(schedule, routing=RoutingAlgorithm.FT_TABLE))


class TestScheduleValidation:
    def test_node_out_of_range(self):
        schedule = PermanentFaultSchedule.of(PermanentFault("router", 99))
        with pytest.raises(ValueError, match="node 99"):
            Network(config_with(schedule))

    def test_missing_link_rejected(self):
        # Node 3 is the north-east corner of a 4x4 mesh: no east link.
        schedule = PermanentFaultSchedule.of(
            PermanentFault("link", 3, Direction.EAST)
        )
        with pytest.raises(ValueError, match="no such link"):
            Network(config_with(schedule))

    def test_vc_out_of_range(self):
        schedule = PermanentFaultSchedule.of(
            PermanentFault("vc", 5, Direction.EAST, vc=7)
        )
        with pytest.raises(ValueError, match="VC 7"):
            Network(config_with(schedule))


class TestDeadOnArrivalLink:
    def test_full_delivery_around_the_hole(self):
        """Acceptance: a dead link, and every packet still arrives."""
        schedule = PermanentFaultSchedule.of(
            PermanentFault("link", 5, Direction.EAST)
        )
        result = run_simulation(config_with(schedule, messages=500))
        assert result.packets_lost == 0
        assert result.packets_delivered == 500
        assert result.counter("permanent_faults_applied") == 1
        assert result.counter("reroute_recomputations") == 1
        # Nothing was in flight at cycle 0, so nothing could be destroyed.
        assert result.counter("permanent_fault_flits_dropped") == 0

    def test_applied_before_any_traffic(self):
        schedule = PermanentFaultSchedule.of(
            PermanentFault("link", 5, Direction.EAST)
        )
        net = Network(config_with(schedule))
        assert (5, Direction.EAST) in net._dead_links
        assert net.stats.counters["permanent_faults_applied"] == 1


class TestMidRunKills:
    def test_link_kill_loses_only_in_flight_packets(self):
        schedule = PermanentFaultSchedule.of(
            PermanentFault("link", 5, Direction.EAST, cycle=300)
        )
        result = run_simulation(config_with(schedule, messages=600))
        assert not result.hit_cycle_limit
        assert result.packets_delivered + result.packets_lost >= 600
        # Only wormholes crossing the link at cycle 300 can die; with a
        # 4-flit packet that is a handful at most, never a flood.
        assert result.packets_lost <= 10
        assert result.counter("packets_lost") == result.packets_lost

    def test_router_kill_drains_and_accounts_everything(self):
        schedule = PermanentFaultSchedule.of(PermanentFault("router", 10, cycle=250))
        result = run_simulation(config_with(schedule, messages=600))
        assert not result.hit_cycle_limit
        # Traffic to/from the dead node is refused, not wedged.
        assert result.counter("packets_unroutable") > 0
        assert result.packets_delivered + result.packets_lost >= 600

    def test_vc_kill_keeps_link_alive(self):
        schedule = PermanentFaultSchedule.of(
            PermanentFault("vc", 5, Direction.EAST, vc=1, cycle=200)
        )
        result = run_simulation(config_with(schedule, messages=500))
        assert not result.hit_cycle_limit
        assert result.packets_delivered + result.packets_lost >= 500
        net = Network(config_with(schedule))
        for _ in range(300):
            net.step()
        # The other VCs keep the channel usable: the link itself survives.
        assert (5, Direction.EAST) not in net._dead_links
        assert net.routers[5].outputs[int(Direction.EAST)][1].dead

    def test_killing_every_vc_escalates_to_the_link(self):
        num_vcs = NoCConfig().num_vcs
        schedule = PermanentFaultSchedule.of(
            *(
                PermanentFault("vc", 5, Direction.EAST, vc=v, cycle=100)
                for v in range(num_vcs)
            )
        )
        net = Network(config_with(schedule))
        for _ in range(150):
            net.step()
        assert (5, Direction.EAST) in net._dead_links

    def test_casualties_counted_once(self):
        schedule = PermanentFaultSchedule.of(
            PermanentFault("router", 10, cycle=250)
        )
        net = Network(config_with(schedule))
        sim_result = run_simulation(config_with(schedule, messages=400))
        assert sim_result.counter("packets_lost") == sim_result.packets_lost


class TestReachabilityQueries:
    def test_network_is_reachable_tracks_routing(self):
        schedule = PermanentFaultSchedule.of(PermanentFault("router", 10))
        net = Network(config_with(schedule))
        assert not net.is_reachable(0, 10)
        assert net.is_reachable(0, 15)

    def test_ni_refuses_unreachable_destination(self):
        from repro.noc.packet import Packet

        schedule = PermanentFaultSchedule.of(PermanentFault("router", 10))
        net = Network(config_with(schedule))
        net.interfaces[0].enqueue(
            Packet(packet_id=0, src=0, dst=10, num_flits=4, injection_cycle=0)
        )
        for _ in range(5):
            net.step()
        assert net.stats.counters.get("packets_unroutable", 0) == 1
        assert net.lost == 1
