"""Router edge cases: NACK corner paths, stale signals, NI details."""

import pytest

from repro.config import NoCConfig, SimulationConfig
from repro.noc.link import NackSignal
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.types import Corruption, Direction, LinkProtection, VCState
from tests.conftest import inject_packet, run_until_delivered


def build(**noc_overrides):
    defaults = dict(width=3, height=1, num_vcs=1)
    defaults.update(noc_overrides)
    return Network(SimulationConfig(noc=NoCConfig(**defaults)))


class TestNackEdgeCases:
    def test_stale_link_nack_is_ignored(self):
        """A NACK naming a sequence no longer in the replay window (cannot
        happen within protocol timing, but can via a glitched duplicate)
        must not corrupt channel state."""
        net = build()
        inject_packet(net, src=0, dst=2)
        run_until_delivered(net, 1)
        router = net.routers[0]
        link = router.out_links[int(Direction.EAST)]
        # Forge a NACK for an ancient sequence.
        link.send_nack(net.cycle, NackSignal(vc=0, seq=0, kind="link"))
        net.run_cycles(3)
        channel = router.outputs[int(Direction.EAST)][0]
        # Entries still in the window get replayed (harmlessly dropped
        # downstream by the sequence filter); nothing crashes or leaks.
        inject_packet(net, src=0, dst=2, packet_id=1)
        run_until_delivered(net, 2)

    def test_stale_route_nack_without_owner_is_ignored(self):
        net = build()
        inject_packet(net, src=0, dst=2)
        run_until_delivered(net, 1)
        net.run_cycles(5)
        router = net.routers[0]
        link = router.out_links[int(Direction.EAST)]
        link.send_nack(net.cycle, NackSignal(vc=0, seq=99, kind="route"))
        net.run_cycles(3)  # must not raise
        inject_packet(net, src=0, dst=2, packet_id=1)
        run_until_delivered(net, 2)

    def test_unknown_nack_kind_raises(self):
        net = build()
        router = net.routers[0]
        with pytest.raises(ValueError):
            router._handle_nack(0, int(Direction.EAST), NackSignal(0, 0, "bogus"))


class TestGiveUpPath:
    def test_max_nack_retries_accepts_corrupt(self):
        """A permanently corrupted stream (corrupt retransmission-buffer
        copy, no duplicate buffer) must terminate via the give-up escape,
        not loop forever."""
        net = build(max_nack_retries=3)

        def always_multi(cycle, node, direction=None):
            return Corruption.MULTI

        net.injector.link_upset = always_multi  # type: ignore[method-assign]
        inject_packet(net, src=0, dst=1, num_flits=2)
        for _ in range(300):
            net.step()
            if net.completed:
                break
        assert net.completed == 1
        assert net.stats.counter("retransmission_giveups") >= 1
        assert net.stats.counter("packets_delivered_corrupt") == 1


class TestE2EStaleSignals:
    def test_stale_retransmit_request_is_ignored(self):
        net = build(link_protection=LinkProtection.E2E)
        inject_packet(net, src=0, dst=2)
        run_until_delivered(net, 1)
        net.run_cycles(10)  # let the ACK release the copy
        ni = net.interfaces[0]
        assert 0 not in ni.e2e_copies
        ni.retransmit(0)  # stale request after release: no-op
        assert not ni.pending

    def test_release_unknown_packet_is_noop(self):
        net = build(link_protection=LinkProtection.E2E)
        net.interfaces[0].release(12345)


class TestNIWormholeInterleaving:
    def test_ni_serializes_one_flit_per_cycle(self):
        net = build(width=2, num_vcs=3)
        for pid in range(3):
            inject_packet(net, src=0, dst=1, packet_id=pid)
        # 3 packets x 4 flits over one local link at 1 flit/cycle: at least
        # 12 cycles before the last ejects.
        cycles = run_until_delivered(net, 3)
        assert cycles >= 12

    def test_queued_packets_property(self):
        net = build(num_vcs=1)
        for pid in range(4):
            inject_packet(net, src=0, dst=2, packet_id=pid)
        net.step()
        assert net.interfaces[0].queued_packets >= 3


class TestMisrouteToLocal:
    def test_wrong_ejection_reforwarded(self):
        """An RT fault can eject a packet at the wrong node (misroute to
        the LOCAL port).  The NI detects the misdelivery behaviourally and
        forwards the packet onward."""
        net = build(width=3)
        state = {"armed": True}

        def rt_upset(cycle, node):
            if state["armed"] and node == 1:
                state["armed"] = False
                return True
            return False

        net.injector.routing_upset = rt_upset  # type: ignore[method-assign]
        # Force the misdirection to be the LOCAL port.
        net.injector.misdirect = lambda correct, allowed: Direction.LOCAL  # type: ignore[method-assign]
        inject_packet(net, src=0, dst=2)
        for _ in range(400):
            net.step()
            if net.completed:
                break
        assert net.delivered == 1
        assert net.stats.counter("packets_misrouted") == 1
        assert net.stats.counter("packets_reforwarded") == 1
