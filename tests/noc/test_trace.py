"""Tests for the non-invasive packet tracer."""

from repro.config import NoCConfig, SimulationConfig
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.noc.trace import PacketTracer
from repro.types import Corruption


def build(width=3, height=1, **noc):
    return Network(SimulationConfig(noc=NoCConfig(width=width, height=height, **noc)))


class TestTracer:
    def test_tracks_full_journey(self):
        net = build()
        net.interfaces[0].enqueue(Packet(0, src=0, dst=2, num_flits=4, injection_cycle=0))
        tracer = PacketTracer(net, watch=[0])
        assert tracer.run_until_delivered(1, max_cycles=100) is not None
        trace = tracer.trace(0)
        assert trace.sightings, "must have observed the packet"
        locations = trace.locations_visited()
        assert any("router 0" in loc for loc in locations)
        assert any("router 1" in loc for loc in locations)
        assert any("link" in loc for loc in locations)

    def test_unwatched_packets_not_recorded(self):
        net = build()
        net.interfaces[0].enqueue(Packet(0, src=0, dst=2, num_flits=4, injection_cycle=0))
        net.interfaces[1].enqueue(Packet(1, src=1, dst=2, num_flits=4, injection_cycle=0))
        tracer = PacketTracer(net, watch=[1])
        tracer.run_until_delivered(2, max_cycles=200)
        assert all(s.packet_id == 1 for s in tracer.trace(1).sightings)

    def test_link_crossings_match_hops_fault_free(self):
        net = build(width=4)
        net.interfaces[0].enqueue(Packet(0, src=0, dst=3, num_flits=2, injection_cycle=0))
        tracer = PacketTracer(net, watch=[0])
        tracer.run_until_delivered(1, max_cycles=100)
        # 3 inter-router hops on a 1x4 row.
        assert tracer.trace(0).link_crossings(0) == 3

    def test_retransmission_shows_extra_crossing(self):
        net = build(width=4, num_vcs=1)
        hits = {"n": 0}

        def upset(cycle, node, direction=None):
            hits["n"] += 1
            return Corruption.MULTI if hits["n"] == 1 else None

        net.injector.link_upset = upset  # type: ignore[method-assign]
        net.interfaces[0].enqueue(Packet(0, src=0, dst=3, num_flits=2, injection_cycle=0))
        tracer = PacketTracer(net, watch=[0])
        tracer.run_until_delivered(1, max_cycles=100)
        assert tracer.trace(0).link_crossings(0) == 4  # 3 hops + 1 replay

    def test_observes_source_queue(self):
        net = build(num_vcs=1)
        for pid in range(6):
            net.interfaces[0].enqueue(
                Packet(pid, src=0, dst=2, num_flits=4, injection_cycle=0)
            )
        tracer = PacketTracer(net, watch=[5])
        tracer.step_and_observe()
        locations = tracer.trace(5).locations_visited()
        assert any("source queue" in loc for loc in locations)

    def test_timeout_returns_none(self):
        net = build()
        tracer = PacketTracer(net, watch=[0])
        assert tracer.run_until_delivered(1, max_cycles=5) is None
