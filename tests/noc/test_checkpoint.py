"""Crash-safe checkpoint/resume: container format and bit-for-bit resume.

The contract under test (docs/CHECKPOINTING.md): interrupting a run at any
cycle boundary, discarding the process, and resuming from the checkpoint
file yields the *identical* run — same ``SimulationResult`` serialization,
same counters, byte-identical NDJSON telemetry — on both cycle loops,
under transient fault storms, permanent-fault schedules and deadlock
recovery.  The scenario matrix is shared with the fast-path equivalence
suite, which is the repo's canonical stress catalogue.
"""

import json
import pickle

import pytest

from repro.checkpoint import (
    CHECKPOINT_VERSION,
    MAGIC,
    CheckpointError,
    load_checkpoint,
    read_checkpoint_header,
    resume_from,
    save_checkpoint,
)
from repro.config import FaultConfig, NoCConfig, SimulationConfig, WorkloadConfig
from repro.noc.simulator import Simulator
from repro.serialization import config_to_dict, result_to_dict
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.export import write_ndjson
from repro.types import FaultSite

from tests.noc.test_fast_path_equivalence import SCENARIOS, _config

#: The stress catalogue, minus the fault-free warmups (they exercise
#: nothing the faulted ones don't).
RESUME_SCENARIOS = [
    "xy_link_faults",
    "west_first_all_fault_sites",
    "adaptive_deadlock_recovery",
    "e2e_protection",
    "xy_all_sites_alt_seed",
    "permanent_router_kill_with_transients",
    "permanent_storm_doa_and_vc",
]


def _observables(result):
    out = result_to_dict(result)
    out.pop("config")
    return out


def _interrupted_run(config, checkpoint_path, at_cycle):
    """Run to ``at_cycle``, snapshot, destroy the simulator ("crash"),
    then resume from the file and finish."""
    sim = Simulator(config)
    sim.run_to_cycle(at_cycle)
    save_checkpoint(sim, checkpoint_path)
    del sim  # the crash: no live state survives
    resumed = load_checkpoint(checkpoint_path)
    assert resumed.resumed_from_cycle == at_cycle
    return resumed.run()


class TestResumeEquivalence:
    @pytest.mark.parametrize("name", RESUME_SCENARIOS)
    @pytest.mark.parametrize("activity", [False, True], ids=["full", "active"])
    def test_midpoint_resume_is_bit_for_bit(self, name, activity, tmp_path):
        config = _config(activity, **SCENARIOS[name])
        golden = Simulator(config).run()
        midpoint = max(1, golden.cycles // 2)
        resumed = _interrupted_run(
            config, tmp_path / "mid.ckpt", midpoint
        )
        assert _observables(resumed) == _observables(golden)

    @pytest.mark.parametrize("activity", [False, True], ids=["full", "active"])
    def test_double_interruption(self, activity, tmp_path):
        """Crashing a run that was itself resumed still converges to the
        golden result — checkpoints chain."""
        config = _config(activity, **SCENARIOS["xy_link_faults"])
        golden = Simulator(config).run()
        first, second = golden.cycles // 3, 2 * golden.cycles // 3
        sim = Simulator(config)
        sim.run_to_cycle(first)
        save_checkpoint(sim, tmp_path / "a.ckpt")
        del sim
        sim = load_checkpoint(tmp_path / "a.ckpt")
        sim.run_to_cycle(second)
        save_checkpoint(sim, tmp_path / "b.ckpt")
        del sim
        resumed = load_checkpoint(tmp_path / "b.ckpt")
        assert resumed.resumed_from_cycle == second
        assert _observables(resumed.run()) == _observables(golden)

    @pytest.mark.parametrize("activity", [False, True], ids=["full", "active"])
    def test_resume_with_invariant_checks(self, activity, tmp_path):
        """The sanitizer rides along in the snapshot and keeps auditing
        every cycle after the resume."""
        config = _config(
            activity,
            invariant_checks=True,
            **{
                k: v
                for k, v in SCENARIOS["permanent_storm_doa_and_vc"].items()
            },
        )
        golden = Simulator(config).run()
        resumed = _interrupted_run(
            config, tmp_path / "san.ckpt", golden.cycles // 2
        )
        assert _observables(resumed) == _observables(golden)

    def test_resume_preserves_hit_cycle_limit(self, tmp_path):
        config = _config(True, **SCENARIOS["xy_link_faults"]).replace(
            workload=WorkloadConfig(
                injection_rate=0.05,
                num_messages=100_000,
                warmup_messages=20,
                max_cycles=400,
            )
        )
        golden = Simulator(config).run()
        assert golden.hit_cycle_limit
        resumed = _interrupted_run(config, tmp_path / "lim.ckpt", 200)
        assert resumed.hit_cycle_limit
        assert _observables(resumed) == _observables(golden)


class TestTelemetryByteEquality:
    @pytest.mark.parametrize("activity", [False, True], ids=["full", "active"])
    def test_ndjson_stream_is_byte_identical(self, activity, tmp_path):
        config = _config(
            activity, **SCENARIOS["permanent_router_kill_with_transients"]
        ).replace(telemetry=TelemetryConfig(enabled=True, metrics_interval=25))
        golden = Simulator(config).run()
        golden_path = tmp_path / "golden.ndjson"
        write_ndjson(
            golden.telemetry, golden_path, config=config_to_dict(config)
        )
        resumed = _interrupted_run(
            config, tmp_path / "tel.ckpt", golden.cycles // 2
        )
        resumed_path = tmp_path / "resumed.ndjson"
        write_ndjson(
            resumed.telemetry, resumed_path, config=config_to_dict(config)
        )
        assert golden_path.read_bytes() == resumed_path.read_bytes()


class TestAutoCheckpointing:
    def _auto_config(self, tmp_path, activity=True):
        return _config(activity, **SCENARIOS["xy_link_faults"]).replace(
            checkpoint_interval=100,
            checkpoint_path=str(tmp_path / "auto.ckpt"),
        )

    def test_schedule_writes_and_counts(self, tmp_path):
        config = self._auto_config(tmp_path)
        result = Simulator(config).run()
        written = result.counter("checkpoints_written")
        assert written == result.cycles // 100
        header = read_checkpoint_header(tmp_path / "auto.ckpt")
        assert header["cycle"] == (result.cycles // 100) * 100

    @pytest.mark.parametrize("activity", [False, True], ids=["full", "active"])
    def test_kill_and_resume_matches_uninterrupted(self, activity, tmp_path):
        """The whole point: run with auto-checkpointing, 'crash' between
        checkpoints, resume from the file — counters included
        (``checkpoints_written`` agrees because the cycle-based schedule
        makes the resumed run rewrite the same remaining checkpoints)."""
        config = self._auto_config(tmp_path, activity)
        golden = Simulator(config).run()
        assert golden.counter("checkpoints_written") > 1
        sim = Simulator(config)
        sim.run_to_cycle(250)  # dies between the cycle-200 and -300 snapshots
        del sim
        resumed_sim = resume_from(config.checkpoint_path)
        assert resumed_sim.resumed_from_cycle == 200
        resumed = resumed_sim.run()
        assert _observables(resumed) == _observables(golden)

    def test_interval_requires_path(self):
        with pytest.raises(ValueError, match="set together"):
            SimulationConfig(checkpoint_interval=100)
        with pytest.raises(ValueError, match="set together"):
            SimulationConfig(checkpoint_path="x.ckpt")
        with pytest.raises(ValueError, match=">= 1"):
            SimulationConfig(checkpoint_interval=0, checkpoint_path="x.ckpt")

    def test_write_checkpoint_without_path_rejected(self):
        sim = Simulator(_config(True, **SCENARIOS["xy_fault_free"]))
        with pytest.raises(ValueError, match="no checkpoint path"):
            sim.write_checkpoint()


class TestContainerFormat:
    def _snapshot(self, tmp_path):
        sim = Simulator(_config(True, **SCENARIOS["xy_link_faults"]))
        sim.run_to_cycle(50)
        path = tmp_path / "snap.ckpt"
        save_checkpoint(sim, path)
        return path

    def test_header_readable_without_unpickling(self, tmp_path):
        path = self._snapshot(tmp_path)
        header = read_checkpoint_header(path)
        assert header["checkpoint_version"] == CHECKPOINT_VERSION
        assert header["schema"] == "repro/v1"
        assert header["cycle"] == 50
        assert header["config"]["noc"]["width"] == 4
        assert header["payload_bytes"] > 0

    def test_fresh_simulator_has_no_resume_marker(self):
        assert Simulator(_config(True)).resumed_from_cycle is None

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no such checkpoint"):
            load_checkpoint(tmp_path / "absent.ckpt")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(b"definitely not a checkpoint")
        with pytest.raises(CheckpointError, match="bad magic"):
            load_checkpoint(path)

    def test_unsupported_version(self, tmp_path):
        path = self._snapshot(tmp_path)
        raw = path.read_bytes()
        mutated = raw.replace(
            f'"checkpoint_version":{CHECKPOINT_VERSION}'.encode(),
            f'"checkpoint_version":{CHECKPOINT_VERSION + 1}'.encode(),
            1,
        )
        assert mutated != raw
        path.write_bytes(mutated)
        with pytest.raises(CheckpointError, match="not supported"):
            load_checkpoint(path)

    def test_corrupted_payload_rejected(self, tmp_path):
        path = self._snapshot(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-100] ^= 0xFF  # flip a byte deep in the pickle
        path.write_bytes(bytes(raw))
        with pytest.raises(CheckpointError, match="checksum mismatch"):
            load_checkpoint(path)

    def test_truncated_payload_rejected(self, tmp_path):
        path = self._snapshot(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError, match="truncated payload"):
            load_checkpoint(path)

    def test_wrong_payload_type_rejected(self, tmp_path):
        payload = pickle.dumps({"not": "a simulator"})
        import hashlib

        header = {
            "checkpoint_version": CHECKPOINT_VERSION,
            "payload_bytes": len(payload),
            "payload_sha256": hashlib.sha256(payload).hexdigest(),
        }
        path = tmp_path / "wrong.ckpt"
        path.write_bytes(
            MAGIC + json.dumps(header).encode() + b"\n" + payload
        )
        with pytest.raises(CheckpointError, match="not a Simulator"):
            load_checkpoint(path)

    def test_overwrite_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = self._snapshot(tmp_path)
        sim = load_checkpoint(path)
        sim.run_to_cycle(80)
        save_checkpoint(sim, path)
        assert read_checkpoint_header(path)["cycle"] == 80
        leftovers = [p for p in tmp_path.iterdir() if ".tmp." in p.name]
        assert leftovers == []

    def test_config_roundtrips_checkpoint_fields(self, tmp_path):
        from repro.serialization import config_from_dict

        config = SimulationConfig(
            noc=NoCConfig(width=3, height=3),
            faults=FaultConfig(rates={FaultSite.LINK: 0.01}),
            checkpoint_interval=250,
            checkpoint_path=str(tmp_path / "rt.ckpt"),
        )
        again = config_from_dict(config_to_dict(config))
        assert again.checkpoint_interval == 250
        assert again.checkpoint_path == str(tmp_path / "rt.ckpt")
        assert again == config


class TestHeaderTruncation:
    """A crash can land mid-write anywhere; ``read_checkpoint_header`` must
    diagnose every prefix of a valid file instead of tracebacking (the
    supervisor calls it on whatever the dead worker left behind)."""

    def _snapshot(self, tmp_path):
        sim = Simulator(_config(True, **SCENARIOS["xy_link_faults"]))
        sim.run_to_cycle(30)
        path = tmp_path / "snap.ckpt"
        save_checkpoint(sim, path)
        return path

    def test_zero_length_file(self, tmp_path):
        path = tmp_path / "empty.ckpt"
        path.write_bytes(b"")
        with pytest.raises(CheckpointError, match="bad magic"):
            read_checkpoint_header(path)

    def test_partial_magic(self, tmp_path):
        path = tmp_path / "partial.ckpt"
        path.write_bytes(MAGIC[: len(MAGIC) // 2])
        with pytest.raises(CheckpointError, match="bad magic"):
            read_checkpoint_header(path)

    def test_magic_only_no_header(self, tmp_path):
        path = tmp_path / "headerless.ckpt"
        path.write_bytes(MAGIC)
        with pytest.raises(CheckpointError, match="truncated checkpoint header"):
            read_checkpoint_header(path)

    def test_header_cut_mid_json(self, tmp_path):
        whole = self._snapshot(tmp_path).read_bytes()
        header_end = whole.index(b"\n", len(MAGIC))
        path = tmp_path / "midjson.ckpt"
        # Cut inside the JSON header line: no terminating newline survives.
        path.write_bytes(whole[: len(MAGIC) + (header_end - len(MAGIC)) // 2])
        with pytest.raises(CheckpointError, match="truncated checkpoint header"):
            read_checkpoint_header(path)

    def test_complete_header_line_with_broken_json(self, tmp_path):
        path = tmp_path / "garbled.ckpt"
        path.write_bytes(MAGIC + b'{"checkpoint_version": \n')
        with pytest.raises(CheckpointError, match="unparseable checkpoint header"):
            read_checkpoint_header(path)

    def test_every_prefix_of_a_real_checkpoint_is_diagnosed(self, tmp_path):
        """Sweep truncation points across magic + header: always a
        CheckpointError naming the file, never an uncaught exception."""
        whole = self._snapshot(tmp_path).read_bytes()
        header_end = whole.index(b"\n", len(MAGIC))
        path = tmp_path / "sweep.ckpt"
        for cut in range(header_end + 1):
            path.write_bytes(whole[:cut])
            with pytest.raises(CheckpointError, match="sweep.ckpt"):
                read_checkpoint_header(path)
