"""Tests for links, delay lines and reverse channels."""

import pytest

from repro.noc.flit import Flit
from repro.noc.link import (
    DelayLine,
    HandshakeChannel,
    Link,
    NackSignal,
    ProbeSignal,
)
from repro.types import Corruption, Direction, FlitType


def make_flit(seq=0):
    return Flit(packet_id=0, seq=seq, ftype=FlitType.HEAD, src=0, dst=1)


class TestDelayLine:
    def test_single_cycle_latency(self):
        line = DelayLine(1)
        line.push(10, "x")
        assert line.pop_due(10) == []
        assert line.pop_due(11) == ["x"]
        assert line.pop_due(12) == []

    def test_multi_cycle_latency(self):
        line = DelayLine(3)
        line.push(0, "a")
        assert line.pop_due(2) == []
        assert line.pop_due(3) == ["a"]

    def test_ordering_preserved(self):
        line = DelayLine(1)
        line.push(0, "a")
        line.push(0, "b")
        assert line.pop_due(1) == ["a", "b"]

    def test_late_pop_gets_everything_due(self):
        line = DelayLine(1)
        line.push(0, "a")
        line.push(1, "b")
        assert line.pop_due(5) == ["a", "b"]

    def test_peek_pending(self):
        line = DelayLine(1)
        line.push(0, "a")
        assert line.peek_pending() == ["a"]
        assert len(line) == 1

    def test_rejects_zero_latency(self):
        with pytest.raises(ValueError):
            DelayLine(0)


class TestLink:
    def test_flit_transfer_carries_metadata(self):
        link = Link(0, Direction.EAST, 1, Direction.WEST)
        flit = make_flit()
        link.send_flit(0, vc=2, seq=7, flit=flit, corruption=Corruption.SINGLE)
        assert flit.link_seq == 7
        (transfer,) = link.flit_arrivals(1)
        assert transfer.vc == 2 and transfer.seq == 7
        assert transfer.corruption is Corruption.SINGLE
        assert link.flit_traversals == 1

    def test_reverse_channels(self):
        link = Link(0, Direction.EAST, 1, Direction.WEST)
        link.send_credit(0, vc=1)
        link.send_nack(0, NackSignal(vc=1, seq=3, kind="link"))
        assert link.credit_arrivals(0) == []
        (credit,) = link.credit_arrivals(1)
        assert credit.vc == 1
        (nack,) = link.nack_arrivals(1)
        assert nack.seq == 3 and nack.kind == "link"

    def test_probe_channel(self):
        link = Link(0, Direction.EAST, 1, Direction.WEST)
        link.send_probe(0, ProbeSignal(origin=5, target_vc=2))
        (probe,) = link.probe_arrivals(1)
        assert probe.origin == 5 and probe.target_vc == 2 and probe.kind == "probe"

    def test_is_idle(self):
        link = Link(0, Direction.EAST, 1, Direction.WEST)
        assert link.is_idle
        link.send_credit(0, 0)
        assert not link.is_idle
        link.credit_arrivals(1)
        assert link.is_idle


class TestHandshakeChannel:
    def test_clean_sample_passes(self):
        hs = HandshakeChannel(tmr_enabled=True)
        assert hs.sample(True, glitch=False)
        assert hs.glitches_masked == 0

    def test_tmr_masks_glitch(self):
        hs = HandshakeChannel(tmr_enabled=True)
        assert hs.sample(True, glitch=True)
        assert hs.glitches_masked == 1
        assert hs.signals_lost == 0

    def test_without_tmr_signal_lost(self):
        hs = HandshakeChannel(tmr_enabled=False)
        assert not hs.sample(True, glitch=True)
        assert hs.signals_lost == 1
