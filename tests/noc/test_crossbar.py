"""Tests for the crossbar and its fault semantics (Section 4.4)."""

import pytest

from repro.noc.crossbar import Crossbar
from repro.noc.flit import Flit
from repro.types import Corruption, FlitType


def make_flit(seq=0):
    return Flit(packet_id=0, seq=seq, ftype=FlitType.BODY, src=0, dst=1)


class TestTraversal:
    def test_moves_flits_cleanly(self):
        xbar = Crossbar(5)
        f1, f2 = make_flit(1), make_flit(2)
        driven = xbar.traverse([(0, 2, f1), (1, 3, f2)])
        assert sorted((port, flit.seq) for port, flit, _ in driven) == [(2, 1), (3, 2)]
        assert all(corr is Corruption.NONE for _, _, corr in driven)
        assert xbar.traversals == 2

    def test_empty_moves(self):
        assert Crossbar(5).traverse([]) == []

    def test_rejects_invalid_ports(self):
        xbar = Crossbar(5)
        with pytest.raises(ValueError):
            xbar.traverse([(5, 0, make_flit())])
        with pytest.raises(ValueError):
            xbar.traverse([(0, 9, make_flit())])

    def test_rejects_zero_ports(self):
        with pytest.raises(ValueError):
            Crossbar(0)


class TestCollisions:
    def test_two_drivers_garble_both(self):
        # An undetected SA duplicate grant drives one output from two
        # inputs; electrically both flits are destroyed (Section 4.3 (c)).
        xbar = Crossbar(5)
        driven = xbar.traverse([(0, 2, make_flit(1)), (1, 2, make_flit(2))])
        assert len(driven) == 2
        assert all(corr is Corruption.MULTI for _, _, corr in driven)

    def test_collision_does_not_mutate_flits(self):
        # The retransmission buffer keeps the clean copy (written from the
        # transmitter register): corruption rides on the traversal record.
        xbar = Crossbar(5)
        f1 = make_flit(1)
        xbar.traverse([(0, 2, f1), (1, 2, make_flit(2))])
        assert f1.corruption is Corruption.NONE

    def test_multicast_from_one_input_is_not_a_collision(self):
        xbar = Crossbar(5)
        f = make_flit()
        driven = xbar.traverse([(0, 1, f), (0, 2, f)])
        assert all(corr is Corruption.NONE for _, _, corr in driven)


class TestUpsetHook:
    def test_hook_applies_corruption(self):
        xbar = Crossbar(5)
        driven = xbar.traverse(
            [(0, 1, make_flit())], corrupt_hook=lambda f: Corruption.SINGLE
        )
        assert driven[0][2] is Corruption.SINGLE

    def test_hook_none_is_clean(self):
        xbar = Crossbar(5)
        driven = xbar.traverse([(0, 1, make_flit())], corrupt_hook=lambda f: None)
        assert driven[0][2] is Corruption.NONE

    def test_collision_dominates_single_upset(self):
        xbar = Crossbar(5)
        driven = xbar.traverse(
            [(0, 2, make_flit(1)), (1, 2, make_flit(2))],
            corrupt_hook=lambda f: Corruption.SINGLE,
        )
        assert all(corr is Corruption.MULTI for _, _, corr in driven)
