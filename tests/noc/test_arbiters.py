"""Tests for the round-robin and matrix arbiters."""

from collections import Counter

import pytest

from repro.noc.arbiters import MatrixArbiter, RoundRobinArbiter


class TestRoundRobin:
    def test_no_requests(self):
        assert RoundRobinArbiter(4).arbitrate([False] * 4) is None

    def test_single_request_wins(self):
        arb = RoundRobinArbiter(4)
        assert arb.arbitrate([False, False, True, False]) == 2

    def test_rotates_after_grant(self):
        arb = RoundRobinArbiter(3)
        all_req = [True, True, True]
        winners = [arb.arbitrate(all_req) for _ in range(6)]
        assert winners == [0, 1, 2, 0, 1, 2]

    def test_strong_fairness_under_full_load(self):
        arb = RoundRobinArbiter(5)
        counts = Counter(arb.arbitrate([True] * 5) for _ in range(100))
        assert set(counts.values()) == {20}

    def test_skips_idle_requesters(self):
        arb = RoundRobinArbiter(4)
        req = [True, False, True, False]
        winners = [arb.arbitrate(req) for _ in range(4)]
        assert winners == [0, 2, 0, 2]

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(4).arbitrate([True] * 3)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)

    def test_reset(self):
        arb = RoundRobinArbiter(3)
        arb.arbitrate([True] * 3)
        arb.reset()
        assert arb.arbitrate([True] * 3) == 0


class TestMatrixArbiter:
    def test_no_requests(self):
        assert MatrixArbiter(4).arbitrate([False] * 4) is None

    def test_initial_priority_order(self):
        assert MatrixArbiter(4).arbitrate([True] * 4) == 0

    def test_winner_becomes_lowest_priority(self):
        arb = MatrixArbiter(3)
        assert arb.arbitrate([True, True, True]) == 0
        assert arb.arbitrate([True, True, True]) == 1
        assert arb.arbitrate([True, True, True]) == 2
        assert arb.arbitrate([True, True, True]) == 0

    def test_least_recently_served(self):
        arb = MatrixArbiter(3)
        arb.arbitrate([True, False, False])  # 0 wins, drops priority
        # 1 and 2 haven't been served; 1 has the higher initial priority.
        assert arb.arbitrate([True, True, False]) == 1
        # Now 2 beats both 0 and 1.
        assert arb.arbitrate([True, True, True]) == 2

    def test_fairness_under_full_load(self):
        arb = MatrixArbiter(4)
        counts = Counter(arb.arbitrate([True] * 4) for _ in range(80))
        assert set(counts.values()) == {20}

    def test_always_grants_exactly_one_winner(self):
        arb = MatrixArbiter(4)
        for pattern in range(1, 16):
            req = [(pattern >> i) & 1 == 1 for i in range(4)]
            winner = arb.arbitrate(req)
            assert winner is not None and req[winner]

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            MatrixArbiter(2).arbitrate([True] * 3)

    def test_reset(self):
        arb = MatrixArbiter(2)
        arb.arbitrate([True, True])
        arb.reset()
        assert arb.arbitrate([True, True]) == 0
