"""The counter catalogue in ``stats/collectors.py`` matches the source.

The module docstring of :mod:`repro.stats.collectors` documents every
counter name the code base increments.  That table drifted once (PR 1 added
counters without documenting them); this test makes the drift impossible by
comparing the documented names against every ``stats.count(...)`` /
``stats.count_measured(...)`` call site under ``src/``, in both directions.
"""

import pathlib
import re

import repro.stats.collectors as collectors

SRC_ROOT = pathlib.Path(collectors.__file__).resolve().parents[1]

#: A literal-name counting call site.  Digits are significant
#: (``e2e_retransmissions``); ``str.count("1")`` in the coding modules does
#: not match because it requires the ``stats.`` receiver.
CALL_SITE = re.compile(r'stats\.count(?:_measured)?\(\s*"([a-z0-9_]+)"')

TABLE_ROW = re.compile(r"^``([a-z0-9_]+)``", re.MULTILINE)


def documented_counters():
    doc = collectors.__doc__
    # Only names inside the rst table (between the first and last rulers)
    # count as catalogue entries.
    first = doc.index("====")
    last = doc.rindex("====")
    return set(TABLE_ROW.findall(doc[first:last]))


def incremented_counters():
    names = set()
    for path in SRC_ROOT.rglob("*.py"):
        names.update(CALL_SITE.findall(path.read_text()))
    return names


def test_src_root_is_the_package_root():
    assert (SRC_ROOT / "noc" / "router.py").exists()


def test_counting_call_sites_use_literal_names():
    """Every counting call passes a string literal, so the catalogue check
    below actually sees all names (a variable name would hide one)."""
    dynamic = re.compile(r"stats\.count(?:_measured)?\(\s*[^\s\")]")
    offenders = []
    for path in SRC_ROOT.rglob("*.py"):
        for i, line in enumerate(path.read_text().splitlines(), 1):
            if dynamic.search(line):
                offenders.append(f"{path.relative_to(SRC_ROOT)}:{i}: {line.strip()}")
    assert not offenders, "\n".join(offenders)


def test_every_incremented_counter_is_documented():
    missing = incremented_counters() - documented_counters()
    assert not missing, (
        f"counters incremented in src/ but absent from the "
        f"stats/collectors.py catalogue: {sorted(missing)}"
    )


def test_every_documented_counter_is_incremented():
    stale = documented_counters() - incremented_counters()
    assert not stale, (
        f"counters documented in stats/collectors.py but never incremented "
        f"in src/: {sorted(stale)}"
    )
