"""Tests for the campaign runner."""

import pytest

from repro.campaign import campaign_table, grid, run_campaign
from repro.config import NoCConfig, SimulationConfig, WorkloadConfig


def tiny_base() -> SimulationConfig:
    return SimulationConfig(
        noc=NoCConfig(width=3, height=3),
        workload=WorkloadConfig(
            injection_rate=0.2, num_messages=100, warmup_messages=20
        ),
    )


class TestGrid:
    def test_cartesian_product(self):
        variants = grid(
            axes={
                "noc.num_vcs": [1, 2],
                "workload.injection_rate": [0.1, 0.2, 0.3],
            },
            base=tiny_base(),
        )
        assert len(variants) == 6
        names = [name for name, _ in variants]
        assert "num_vcs=1 injection_rate=0.1" in names

    def test_sets_nested_values(self):
        variants = grid(
            axes={"faults.rates.link": [0.01]},
            base=tiny_base(),
        )
        from repro.types import FaultSite

        (_, config), = variants
        assert config.faults.rate(FaultSite.LINK) == 0.01

    def test_base_not_mutated(self):
        base = tiny_base()
        grid(axes={"noc.num_vcs": [7]}, base=base)
        assert base.noc.num_vcs == 3

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            grid(axes={})


class TestRunCampaign:
    def test_serial_run(self):
        variants = grid(
            axes={"workload.injection_rate": [0.1, 0.3]},
            base=tiny_base(),
        )
        rows = run_campaign(variants)
        assert len(rows) == 2
        assert rows[0].packets_delivered >= 100
        # Higher load -> higher latency.
        assert rows[1].avg_latency > rows[0].avg_latency

    def test_parallel_matches_serial(self):
        variants = grid(
            axes={"noc.link_protection": ["hbh", "none"]},
            base=tiny_base(),
        )
        serial = run_campaign(variants, processes=1)
        parallel = run_campaign(variants, processes=2)
        assert [r.avg_latency for r in serial] == [
            r.avg_latency for r in parallel
        ]
        assert [r.counters for r in serial] == [r.counters for r in parallel]

    def test_validation(self):
        with pytest.raises(ValueError):
            run_campaign([])
        with pytest.raises(ValueError):
            run_campaign(grid(axes={"noc.num_vcs": [1]}, base=tiny_base()), processes=0)

    def test_table_rendering(self):
        rows = run_campaign(
            grid(axes={"noc.num_vcs": [1]}, base=tiny_base())
        )
        table = campaign_table(rows)
        assert "variant" in table and "num_vcs=1" in table


def _crashing_variant() -> SimulationConfig:
    """Survives config construction, crashes when the Simulator builds the
    traffic pattern (the factory rejects the name)."""
    import dataclasses

    base = tiny_base()
    return base.replace(
        workload=dataclasses.replace(base.workload, pattern="no_such_pattern")
    )


class TestCampaignFailureHandling:
    def test_crashing_variant_yields_failed_row(self):
        rows = run_campaign(
            [("ok", tiny_base()), ("boom", _crashing_variant())],
            lint=False,
        )
        ok, boom = rows
        assert not ok.failed and ok.error is None
        assert ok.packets_delivered >= 100
        assert boom.failed
        assert boom.error is not None and boom.error.startswith("ValueError")
        assert "no_such_pattern" in boom.error
        assert boom.packets_delivered == 0 and boom.counters == {}

    def test_crashing_variant_does_not_kill_the_pool(self):
        rows = run_campaign(
            [
                ("ok-1", tiny_base()),
                ("boom", _crashing_variant()),
                ("ok-2", tiny_base()),
            ],
            processes=2,
            lint=False,
        )
        assert [r.failed for r in rows] == [False, True, False]
        assert rows[0].avg_latency == rows[2].avg_latency

    def test_lint_abort_fires_before_the_pool(self):
        from repro.campaign import CampaignLintError
        from repro.config import NoCConfig

        wedged = SimulationConfig(
            noc=NoCConfig(
                width=4, height=4, topology="torus",
                deadlock_recovery_enabled=False,
            ),
            workload=tiny_base().workload,
        )
        with pytest.raises(CampaignLintError) as excinfo:
            run_campaign(
                [("ok", tiny_base()), ("wedged", wedged)], processes=2
            )
        assert any(
            d.rule_id == "NOC004" for d in excinfo.value.diagnostics
        )

    def test_retries_exhaust_deterministic_failure(self):
        (row,) = run_campaign(
            [("boom", _crashing_variant())], lint=False, retries=2
        )
        assert row.failed

    def test_retries_validation(self):
        with pytest.raises(ValueError):
            run_campaign(
                grid(axes={"noc.num_vcs": [1]}, base=tiny_base()), retries=-1
            )

    def test_failed_row_renders_in_table(self):
        rows = run_campaign([("boom", _crashing_variant())], lint=False)
        table = campaign_table(rows)
        assert "FAILED: ValueError" in table
