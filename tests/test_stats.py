"""Tests for the statistics collectors."""

import math

import pytest

from repro.stats.collectors import LatencyStats, StatsCollector, UtilizationTracker


class TestLatencyStats:
    def test_streaming_moments(self):
        stats = LatencyStats()
        for v in (10.0, 20.0, 30.0):
            stats.record(v)
        assert stats.count == 3
        assert stats.mean == 20.0
        assert stats.minimum == 10.0
        assert stats.maximum == 30.0

    def test_empty_mean_is_zero(self):
        assert LatencyStats().mean == 0.0

    def test_percentiles_require_samples(self):
        stats = LatencyStats()
        stats.record(1.0)
        with pytest.raises(ValueError):
            stats.percentile(0.5)

    def test_percentiles(self):
        stats = LatencyStats(keep_samples=True)
        for v in range(1, 101):
            stats.record(float(v))
        assert stats.percentile(0.0) == 1.0
        assert stats.percentile(1.0) == 100.0
        assert 49.0 <= stats.percentile(0.5) <= 52.0

    def test_empty_percentile(self):
        assert LatencyStats(keep_samples=True).percentile(0.5) == 0.0


class TestUtilizationTracker:
    def test_ratio(self):
        tracker = UtilizationTracker()
        tracker.record(occupied=2, capacity=10)
        tracker.record(occupied=4, capacity=10)
        assert tracker.utilization == pytest.approx(0.3)

    def test_empty_is_zero(self):
        assert UtilizationTracker().utilization == 0.0


class TestStatsCollector:
    def test_measurement_window_gates_latency(self):
        stats = StatsCollector()
        stats.record_ejection(10.0, 3)  # warm-up: counted, not measured
        assert stats.packets_ejected == 1
        assert stats.measured_packets == 0
        stats.start_measurement()
        stats.record_ejection(20.0, 4)
        assert stats.measured_packets == 1
        assert stats.latency.mean == 20.0

    def test_measurement_window_gates_energy(self):
        stats = StatsCollector()
        stats.energy_event("link")
        assert stats.energy_events == {}
        stats.start_measurement()
        stats.energy_event("link", 3)
        assert stats.energy_events["link"] == 3

    def test_count_always_vs_count_measured(self):
        stats = StatsCollector()
        stats.count("x")
        stats.count_measured("y")
        assert stats.counter("x") == 1
        assert stats.counter("y") == 0
        stats.start_measurement()
        stats.count_measured("y")
        assert stats.counter("y") == 1

    def test_utilization_gated(self):
        stats = StatsCollector()
        stats.record_utilization(1, 10, 1, 10)
        assert stats.tx_utilization.utilization == 0.0
        stats.start_measurement()
        stats.record_utilization(5, 10, 1, 10)
        assert stats.tx_utilization.utilization == 0.5

    def test_summary_contains_counters(self):
        stats = StatsCollector()
        stats.count("retransmission_rounds", 7)
        summary = stats.summary()
        assert summary["retransmission_rounds"] == 7.0
        assert "avg_latency" in summary

    def test_unknown_counter_is_zero(self):
        assert StatsCollector().counter("nope") == 0
