"""Tests for the permanent-fault schedule data model and parsers."""

import pytest

from repro.faults.permanent import (
    PermanentFault,
    PermanentFaultSchedule,
    parse_link_spec,
    parse_router_spec,
    parse_vc_spec,
)
from repro.types import Direction


class TestPermanentFault:
    def test_link_fault(self):
        fault = PermanentFault("link", 12, Direction.EAST, cycle=500)
        assert fault.describe() == "link 12:east@500"

    def test_router_fault_needs_no_direction(self):
        fault = PermanentFault("router", 27)
        assert fault.describe() == "router 27@0"

    def test_vc_fault(self):
        fault = PermanentFault("vc", 3, Direction.NORTH, vc=1, cycle=250)
        assert fault.describe() == "vc 3:north:1@250"

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            PermanentFault("buffer", 0, Direction.EAST)

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError, match="node"):
            PermanentFault("router", -1)

    def test_link_without_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            PermanentFault("link", 3)

    def test_local_direction_rejected(self):
        with pytest.raises(ValueError, match="local"):
            PermanentFault("link", 3, Direction.LOCAL)

    def test_vc_without_index_rejected(self):
        with pytest.raises(ValueError, match="vc"):
            PermanentFault("vc", 3, Direction.NORTH)

    def test_frozen_and_hashable(self):
        fault = PermanentFault("link", 1, Direction.WEST)
        assert fault == PermanentFault("link", 1, Direction.WEST)
        assert hash(fault) == hash(PermanentFault("link", 1, Direction.WEST))
        with pytest.raises(AttributeError):
            fault.node = 2


class TestSchedule:
    def test_empty(self):
        schedule = PermanentFaultSchedule.empty()
        assert not schedule
        assert len(schedule) == 0
        assert schedule.to_dicts() == []

    def test_sorted_by_cycle_is_stable(self):
        early = PermanentFault("router", 1, cycle=10)
        first = PermanentFault("link", 2, Direction.EAST)
        second = PermanentFault("link", 3, Direction.WEST, cycle=-5)
        schedule = PermanentFaultSchedule.of(early, first, second)
        ordered = schedule.sorted_by_cycle()
        # Negative cycles clamp to 0; ties keep spec order.
        assert ordered == [first, second, early]

    def test_round_trip(self):
        schedule = PermanentFaultSchedule.of(
            PermanentFault("link", 12, Direction.EAST, cycle=500),
            PermanentFault("router", 27),
            PermanentFault("vc", 3, Direction.NORTH, vc=1, cycle=250),
        )
        dicts = schedule.to_dicts()
        assert dicts[0] == {
            "kind": "link", "node": 12, "direction": "east", "cycle": 500
        }
        assert dicts[1] == {"kind": "router", "node": 27}
        assert PermanentFaultSchedule.from_dicts(dicts) == schedule

    def test_config_round_trip(self):
        import dataclasses

        from repro.config import FaultConfig, SimulationConfig
        from repro.serialization import config_from_dict, config_to_dict

        schedule = PermanentFaultSchedule.of(
            PermanentFault("link", 5, Direction.SOUTH, cycle=99)
        )
        config = SimulationConfig(
            faults=dataclasses.replace(
                FaultConfig.fault_free(), permanent=schedule
            )
        )
        restored = config_from_dict(config_to_dict(config))
        assert restored.faults.permanent == schedule

    def test_config_rejects_wrong_type(self):
        from repro.config import FaultConfig

        with pytest.raises(TypeError, match="PermanentFaultSchedule"):
            FaultConfig(permanent=[PermanentFault("router", 1)])


class TestSpecParsers:
    def test_link_spec(self):
        fault = parse_link_spec("12:east@500")
        assert fault == PermanentFault("link", 12, Direction.EAST, cycle=500)

    def test_link_spec_default_cycle(self):
        assert parse_link_spec("0:west").cycle == 0

    def test_router_spec(self):
        assert parse_router_spec("27@10") == PermanentFault(
            "router", 27, cycle=10
        )

    def test_vc_spec(self):
        assert parse_vc_spec("3:north:1@250") == PermanentFault(
            "vc", 3, Direction.NORTH, vc=1, cycle=250
        )

    def test_vertical_link_spec(self):
        # TSV pillar faults on 3D platforms; topology membership is checked
        # when the schedule meets a Network, not by the grammar.
        assert parse_link_spec("12:up").direction is Direction.UP
        assert parse_link_spec("12:down@40").direction is Direction.DOWN

    @pytest.mark.parametrize(
        "parser, spec",
        [
            (parse_link_spec, "12"),
            (parse_link_spec, "12:sideways"),
            (parse_link_spec, "12:east@soon"),
            (parse_router_spec, "27@never"),
            (parse_vc_spec, "3:north"),
            (parse_vc_spec, "3:local:0"),
        ],
    )
    def test_bad_specs_rejected(self, parser, spec):
        with pytest.raises(ValueError):
            parser(spec)
