"""Tests for the fault injector and fault log."""

import pytest

from repro.config import FaultConfig
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultLog
from repro.types import Corruption, Direction, FaultSite


class TestRates:
    def test_fault_free_never_fires(self):
        inj = FaultInjector(FaultConfig.fault_free())
        assert inj.is_fault_free
        for _ in range(1000):
            assert inj.link_upset(0, 0) is None
            assert not inj.routing_upset(0, 0)
            assert not inj.sa_upset(0, 0)
            assert not inj.va_upset(0, 0)
            assert inj.crossbar_upset(0, 0) is None
            assert not inj.retx_upset(0, 0)
            assert not inj.handshake_glitch(0, 0)
        assert inj.log.total == 0

    def test_rate_one_always_fires(self):
        inj = FaultInjector(FaultConfig.link_only(1.0, multi_bit_fraction=1.0))
        for _ in range(50):
            assert inj.link_upset(0, 0) is Corruption.MULTI

    def test_empirical_rate(self):
        inj = FaultInjector(FaultConfig.link_only(0.1))
        fires = sum(inj.link_upset(0, 0) is not None for _ in range(20_000))
        assert fires == pytest.approx(2000, rel=0.1)

    def test_multi_bit_fraction(self):
        inj = FaultInjector(
            FaultConfig.link_only(1.0, multi_bit_fraction=0.25)
        )
        outcomes = [inj.link_upset(0, 0) for _ in range(8000)]
        multi = sum(o is Corruption.MULTI for o in outcomes)
        assert multi == pytest.approx(2000, rel=0.15)

    def test_crossbar_upsets_are_single_bit(self):
        # Section 4.4: crossbar transients produce single-bit upsets.
        inj = FaultInjector(FaultConfig.single_site(FaultSite.CROSSBAR, 1.0))
        assert inj.crossbar_upset(0, 0) is Corruption.SINGLE


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = FaultInjector(FaultConfig.link_only(0.3, seed=9))
        b = FaultInjector(FaultConfig.link_only(0.3, seed=9))
        assert [a.link_upset(0, 0) for _ in range(200)] == [
            b.link_upset(0, 0) for _ in range(200)
        ]

    def test_different_seed_differs(self):
        a = FaultInjector(FaultConfig.link_only(0.3, seed=1))
        b = FaultInjector(FaultConfig.link_only(0.3, seed=2))
        assert [a.link_upset(0, 0) for _ in range(200)] != [
            b.link_upset(0, 0) for _ in range(200)
        ]


class TestMisdirect:
    def test_never_returns_a_correct_direction(self):
        inj = FaultInjector(FaultConfig.fault_free())
        correct = [Direction.EAST]
        allowed = list(Direction)
        for _ in range(100):
            assert inj.misdirect(correct, allowed) is not Direction.EAST

    def test_falls_back_when_no_wrong_option(self):
        inj = FaultInjector(FaultConfig.fault_free())
        assert inj.misdirect([Direction.EAST], [Direction.EAST]) is Direction.EAST


class TestScenarioPicks:
    def test_va_scenarios_cover_paper_cases(self):
        inj = FaultInjector(FaultConfig.fault_free())
        seen = {inj.pick_va_scenario() for _ in range(500)}
        assert seen == {"invalid", "duplicate", "wrong_vc_same_pc", "wrong_pc"}

    def test_sa_scenarios_cover_paper_cases(self):
        inj = FaultInjector(FaultConfig.fault_free())
        seen = {inj.pick_sa_scenario() for _ in range(500)}
        assert seen == {"blocked", "wrong_output", "duplicate_output", "multicast"}


class TestFaultLog:
    def test_counts_per_site(self):
        inj = FaultInjector(FaultConfig.link_only(1.0))
        inj.link_upset(5, 3)
        inj.link_upset(6, 3)
        assert inj.log.count(FaultSite.LINK) == 2
        assert inj.log.total == 2

    def test_event_trace_when_enabled(self):
        inj = FaultInjector(FaultConfig.link_only(1.0), log_events=True)
        inj.link_upset(5, 3)
        (event,) = list(inj.log.events())
        assert event.cycle == 5 and event.node == 3
        assert event.site is FaultSite.LINK

    def test_event_trace_bounded(self):
        log = FaultLog(log_events=True, max_events=10)
        for i in range(100):
            log.record(FaultSite.LINK, i, 0)
        assert len(list(log.events())) == 10
        assert log.total == 100

    def test_events_filtered_by_site(self):
        log = FaultLog(log_events=True)
        log.record(FaultSite.LINK, 0, 0)
        log.record(FaultSite.ROUTING, 1, 0)
        assert len(list(log.events(FaultSite.ROUTING))) == 1
