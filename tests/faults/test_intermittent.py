"""The intermittent/wear-out fault lifecycle (docs/FAULTS.md).

Covers the spec layer (validation, serialization, CLI grammar), the
deterministic per-site burst streams, strike semantics, the wear-out
escalation's equivalence to an explicitly scheduled permanent death, and
the FaultLog hardening the lifecycle relies on (open site set, bounded
trace suffix semantics).
"""

import dataclasses
import pickle
import random

import pytest

from repro.config import FaultConfig, NoCConfig, SimulationConfig, WorkloadConfig
from repro.faults.intermittent import (
    IntermittentFault,
    IntermittentFaultSchedule,
    IntermittentLifecycle,
    WearOutConfig,
    _SiteState,
    parse_intermittent_spec,
    site_stream_seed,
)
from repro.faults.models import FaultLog
from repro.faults.permanent import PermanentFault, PermanentFaultSchedule
from repro.noc.simulator import Simulator
from repro.serialization import (
    config_from_dict,
    config_to_dict,
    result_to_dict,
)
from repro.types import Corruption, Direction, FaultSite, RoutingAlgorithm


class TestSiteStreamSeed:
    def test_deterministic_and_distinct(self):
        seen = set()
        for node in range(16):
            for direction in (
                Direction.NORTH,
                Direction.EAST,
                Direction.SOUTH,
                Direction.WEST,
            ):
                s = site_stream_seed(42, node, direction)
                assert s == site_stream_seed(42, node, direction)
                assert 0 <= s < 2**64
                seen.add(s)
        assert len(seen) == 64  # no collisions across the whole 4x4 mesh

    def test_varies_with_run_seed(self):
        assert site_stream_seed(1, 5, Direction.EAST) != site_stream_seed(
            2, 5, Direction.EAST
        )


class TestIntermittentFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            IntermittentFault(-1, Direction.EAST, 0.5, 10.0, 10.0)
        with pytest.raises(ValueError, match="local"):
            IntermittentFault(0, Direction.LOCAL, 0.5, 10.0, 10.0)
        with pytest.raises(ValueError, match="rate"):
            IntermittentFault(0, Direction.EAST, 1.5, 10.0, 10.0)
        with pytest.raises(ValueError, match="window means"):
            IntermittentFault(0, Direction.EAST, 0.5, 0.5, 10.0)

    def test_schedule_dict_round_trip(self):
        schedule = IntermittentFaultSchedule.of(
            IntermittentFault(5, Direction.EAST, 0.4, 30.0, 200.0),
            IntermittentFault(9, Direction.NORTH, 0.1, 8.0, 40.0, start=500),
        )
        entries = schedule.to_dicts()
        assert "start" not in entries[0]  # default omitted
        assert entries[1]["start"] == 500
        assert IntermittentFaultSchedule.from_dicts(entries) == schedule

    def test_config_serialization_round_trip(self):
        config = SimulationConfig(
            faults=FaultConfig(
                rates={},
                seed=7,
                intermittent=IntermittentFaultSchedule.of(
                    IntermittentFault(5, Direction.EAST, 0.4, 30.0, 200.0)
                ),
                wear_out=WearOutConfig(threshold=25.0, traversal_weight=0.5),
            )
        )
        again = config_from_dict(config_to_dict(config))
        assert again.faults.intermittent == config.faults.intermittent
        assert again.faults.wear_out == config.faults.wear_out

    def test_wear_out_validation(self):
        with pytest.raises(ValueError, match="positive"):
            WearOutConfig(threshold=0.0)
        with pytest.raises(ValueError, match="non-negative"):
            WearOutConfig(threshold=1.0, strike_weight=-1.0)
        with pytest.raises(ValueError, match="positive weight"):
            WearOutConfig(threshold=1.0, strike_weight=0.0, traversal_weight=0.0)
        assert WearOutConfig.from_dict(None) is None

    def test_wear_out_requires_intermittent_sites(self):
        with pytest.raises(ValueError, match="no intermittent sites"):
            FaultConfig(rates={}, seed=1, wear_out=WearOutConfig(threshold=5.0))


class TestSpecGrammar:
    def test_full_spec(self):
        fault = parse_intermittent_spec("12:east:0.4:30:200@500")
        assert fault == IntermittentFault(
            12, Direction.EAST, 0.4, 30.0, 200.0, start=500
        )

    def test_cycle_defaults_to_zero(self):
        assert parse_intermittent_spec("3:north:0.1:8:40").start == 0

    def test_vertical_directions_parse(self):
        # 3D TSV channels are addressable like any planar direction; the
        # spec is validated against the platform's topology at network
        # construction, not here.
        assert parse_intermittent_spec("12:up:0.4:30:200").direction is Direction.UP
        assert parse_intermittent_spec("12:down:0.4:30:200").direction is Direction.DOWN

    @pytest.mark.parametrize(
        "spec",
        [
            "12:east:0.4:30",
            "12:east:0.4:30:200:9",
            "12:east:lots:30:200",
            "12:sideways:0.4:30:200",
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValueError):
            parse_intermittent_spec(spec)


class TestBurstProcess:
    def _lifecycle(self, *faults, wear_out=None, seed=42):
        return IntermittentLifecycle(
            IntermittentFaultSchedule.of(*faults), wear_out, seed
        )

    def test_duplicate_sites_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            self._lifecycle(
                IntermittentFault(5, Direction.EAST, 0.4, 10.0, 10.0),
                IntermittentFault(5, Direction.EAST, 0.2, 20.0, 20.0),
            )

    def test_windows_are_deterministic_per_seed(self):
        def toggles(seed):
            life = self._lifecycle(
                IntermittentFault(5, Direction.EAST, 0.4, 10.0, 30.0), seed=seed
            )
            out = []
            for cycle in range(600):
                life.advance(cycle)
                out.append(life.site(5, Direction.EAST).on)
            return out

        assert toggles(42) == toggles(42)
        assert toggles(42) != toggles(43)

    def test_process_starts_off_and_respects_start(self):
        life = self._lifecycle(
            IntermittentFault(5, Direction.EAST, 0.9, 10.0, 10.0, start=100)
        )
        (site,) = life.sites
        for cycle in range(100):
            life.advance(cycle)
            assert not site.on  # clean until the process starts
        assert site.next_toggle >= 100

    def test_strikes_only_during_on_windows(self):
        life = self._lifecycle(
            IntermittentFault(5, Direction.EAST, 1.0, 10.0, 10.0)
        )
        (site,) = life.sites
        # Off window: never strikes, draws nothing.
        assert not site.on
        assert life.strike(0, 5, Direction.EAST, 0.0) is None
        assert site.strikes == 0
        # Force the on phase: rate 1.0 strikes every traversal.
        site.on = True
        upset = life.strike(1, 5, Direction.EAST, 0.0)
        assert upset is Corruption.SINGLE
        assert life.strike(2, 5, Direction.EAST, 1.0) is Corruption.MULTI
        assert site.strikes == 2
        # Unknown sites cost nothing and return None.
        assert life.strike(3, 9, Direction.WEST, 0.0) is None

    def test_strikes_recorded_in_fault_log(self):
        life = self._lifecycle(
            IntermittentFault(5, Direction.EAST, 1.0, 10.0, 10.0)
        )
        life.log = FaultLog(log_events=True)
        (site,) = life.sites
        site.on = True
        life.strike(7, 5, Direction.EAST, 0.0)
        (event,) = life.log.events()
        assert event.site is FaultSite.LINK
        assert event.cycle == 7
        assert event.detail.startswith("intermittent:")

    def test_site_state_pickles_bit_for_bit(self):
        life = self._lifecycle(
            IntermittentFault(5, Direction.EAST, 0.5, 10.0, 30.0)
        )
        for cycle in range(50):
            life.advance(cycle)
        (site,) = life.sites
        clone = pickle.loads(pickle.dumps(site))
        assert clone.on == site.on
        assert clone.next_toggle == site.next_toggle
        # The RNG stream continues identically after the round trip.
        assert clone.rng.random() == site.rng.random()


def _config(**kw):
    from repro.telemetry import TelemetryConfig

    noc = NoCConfig(
        width=4,
        height=4,
        routing=kw.get("routing", RoutingAlgorithm.FT_TABLE),
    )
    return SimulationConfig(
        noc=noc,
        faults=FaultConfig(
            rates={},
            seed=kw.get("seed", 42),
            permanent=kw.get("permanent", PermanentFaultSchedule.empty()),
            intermittent=kw.get("intermittent", IntermittentFaultSchedule.empty()),
            wear_out=kw.get("wear_out", None),
        ),
        workload=WorkloadConfig(
            injection_rate=0.15,
            num_messages=200,
            warmup_messages=20,
            max_cycles=50_000,
        ),
        telemetry=kw.get("telemetry", TelemetryConfig(enabled=False)),
        activity_driven=kw.get("activity_driven", False),
    )


class TestWearOutEscalation:
    """Escalation must be indistinguishable from a scheduled death.

    A rate-0 intermittent site never corrupts a flit and draws only from
    its private stream, so traffic is identical to a clean run right up to
    the escalation cycle; a traversal-weight-only wear-out then gives a
    deterministic escalation cycle.  Scheduling an explicit permanent link
    death at that same cycle must produce the same observables (minus the
    lifecycle's own counters), the same dead-link set and routing table,
    and the same deadlock-freedom certificate.
    """

    SITE = (5, Direction.EAST)

    def _escalating_config(self, **kw):
        return _config(
            intermittent=IntermittentFaultSchedule.of(
                IntermittentFault(5, Direction.EAST, 0.0, 20.0, 20.0)
            ),
            wear_out=WearOutConfig(
                threshold=40.0, strike_weight=0.0, traversal_weight=1.0
            ),
            **kw,
        )

    def _escalation_cycle(self):
        from repro.telemetry import TelemetryConfig

        sim = Simulator(
            self._escalating_config(telemetry=TelemetryConfig(enabled=True))
        )
        result = sim.run()
        (event,) = result.telemetry.events_of("wear_out_escalation")
        assert event.node == 5
        assert event.data["direction"] == "east"
        assert event.data["stress"] >= 40.0
        return event.cycle

    def test_escalation_matches_scheduled_death(self):
        esc_cycle = self._escalation_cycle()
        assert esc_cycle > 0

        sim_a = Simulator(self._escalating_config())
        res_a = result_to_dict(sim_a.run())
        sim_b = Simulator(
            _config(
                permanent=PermanentFaultSchedule.of(
                    PermanentFault("link", 5, Direction.EAST, cycle=esc_cycle)
                )
            )
        )
        res_b = result_to_dict(sim_b.run())

        res_a.pop("config")
        res_b.pop("config")
        # The lifecycle's own bookkeeping is the only allowed difference.
        for name in ("intermittent_bursts_started", "wear_out_escalations"):
            res_a["counters"].pop(name, None)
        assert res_a["counters"].get("permanent_faults_applied") == 1
        assert res_a == res_b

        # Same torn-down topology and rebuilt tables...
        net_a, net_b = sim_a.network, sim_b.network
        assert net_a._dead_links == {self.SITE} == net_b._dead_links
        assert net_a.routing_fn._table == net_b.routing_fn._table
        assert (
            net_a.routing_fn._alive_channels
            == net_b.routing_fn._alive_channels
        )

        # ...and the post-escalation routing is still certified
        # deadlock-free, exactly as after the explicit death.
        from repro.analysis.cdg import verify_deadlock_freedom

        cert_a = verify_deadlock_freedom(
            net_a.topology, net_a.routing_fn, net_a.config.noc.num_vcs
        )
        cert_b = verify_deadlock_freedom(
            net_b.topology, net_b.routing_fn, net_b.config.noc.num_vcs
        )
        assert cert_a.deadlock_free
        assert cert_a == cert_b

    def test_escalation_cycle_identical_on_both_loops(self):
        from repro.telemetry import TelemetryConfig

        cycles = []
        for activity_driven in (False, True):
            sim = Simulator(
                self._escalating_config(
                    telemetry=TelemetryConfig(enabled=True),
                    activity_driven=activity_driven,
                )
            )
            result = sim.run()
            (event,) = result.telemetry.events_of("wear_out_escalation")
            cycles.append(event.cycle)
        assert cycles[0] == cycles[1]

    def test_escalated_site_stops_bursting_and_striking(self):
        sim = Simulator(self._escalating_config())
        sim.run()
        (site,) = sim.network.lifecycle.sites
        assert site.escalated
        assert (
            sim.network.lifecycle.strike(99_999, 5, Direction.EAST, 0.0)
            is None
        )

    def test_escalation_skipped_when_site_already_dead(self):
        # An explicit death at cycle 0 makes the later wear-out escalation
        # a no-op: no double teardown, one reroute cause at a time.
        config = dataclasses.replace(
            self._escalating_config(),
            faults=dataclasses.replace(
                self._escalating_config().faults,
                permanent=PermanentFaultSchedule.of(
                    PermanentFault("link", 5, Direction.EAST, cycle=0)
                ),
            ),
        )
        result = Simulator(config).run()
        assert result.counters.get("permanent_faults_applied") == 1
        assert result.counters.get("wear_out_escalations", 0) == 0


class TestFaultLogHardening:
    def test_sites_outside_the_enum_do_not_keyerror(self):
        log = FaultLog()
        log.record("derived-site", 10, 3)  # type: ignore[arg-type]
        log.record("derived-site", 11, 3)  # type: ignore[arg-type]
        assert log.count("derived-site") == 2  # type: ignore[arg-type]
        assert log.total == 2
        # Enum sites still pre-seeded for stable iteration.
        assert log.count(FaultSite.LINK) == 0

    def test_bounded_trace_keeps_a_suffix_and_counts_drops(self):
        log = FaultLog(log_events=True, max_events=4)
        for cycle in range(6):
            log.record(FaultSite.LINK, cycle, node=0)
        assert log.dropped_events == 2
        assert [e.cycle for e in log.events()] == [2, 3, 4, 5]  # the suffix
        # Counters are exact even where the trace is not.
        assert log.count(FaultSite.LINK) == 6

    def test_no_drops_reported_below_capacity(self):
        log = FaultLog(log_events=True, max_events=4)
        for cycle in range(4):
            log.record(FaultSite.LINK, cycle, node=0)
        assert log.dropped_events == 0
        assert len(list(log.events())) == 4

    def test_events_disabled_never_counts_drops(self):
        log = FaultLog(log_events=False, max_events=2)
        for cycle in range(5):
            log.record(FaultSite.LINK, cycle, node=0)
        assert log.dropped_events == 0
        assert list(log.events()) == []
        assert log.count(FaultSite.LINK) == 5
