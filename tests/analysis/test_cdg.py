"""Channel-dependency-graph verifier tests.

The load-bearing claims: XY and west-first are provably deadlock-free on a
mesh (the paper's DT and AD platforms), fully-adaptive and torus-XY are
flagged with a concrete witness, and every reported witness is a genuine
cycle of the graph it came from.
"""

import pytest

from repro.analysis.cdg import ChannelDependencyGraph, verify_deadlock_freedom
from repro.noc.routing import resolve_routing_function
from repro.noc.topology import MeshTopology, TorusTopology
from repro.types import RoutingAlgorithm


def _verdict(topology, algorithm, num_vcs=3):
    routing_fn = resolve_routing_function(algorithm, topology)
    return verify_deadlock_freedom(topology, routing_fn, num_vcs)


def _graph(topology, algorithm):
    routing_fn = resolve_routing_function(algorithm, topology)
    return ChannelDependencyGraph.build(topology, routing_fn)


class TestDeadlockFreeRoutings:
    def test_xy_on_paper_mesh_is_deadlock_free(self):
        verdict = _verdict(MeshTopology(8, 8), RoutingAlgorithm.XY)
        assert verdict.deadlock_free
        assert verdict.witness == ()
        # Every inter-router channel of an 8x8 mesh is reachable under XY.
        assert verdict.num_channels == 2 * (2 * 7 * 8)

    def test_west_first_on_paper_mesh_is_deadlock_free(self):
        verdict = _verdict(MeshTopology(8, 8), RoutingAlgorithm.WEST_FIRST)
        assert verdict.deadlock_free
        # West-first permits strictly more turns than XY, never fewer.
        xy = _verdict(MeshTopology(8, 8), RoutingAlgorithm.XY)
        assert verdict.num_dependencies > xy.num_dependencies

    def test_xy_has_no_prohibited_turn_edges(self):
        # The defining property of XY: a packet travelling vertically never
        # turns back into a horizontal channel.
        graph = _graph(MeshTopology(4, 4), RoutingAlgorithm.XY)
        from repro.types import Direction

        vertical = (Direction.NORTH, Direction.SOUTH)
        horizontal = (Direction.EAST, Direction.WEST)
        for channel in graph.channels:
            if channel.direction not in vertical:
                continue
            for dep in graph.dependencies_of(channel):
                assert dep.direction not in horizontal, (
                    f"XY CDG fabricated turn {channel} -> {dep}"
                )


class TestDeadlockProneRoutings:
    def test_fully_adaptive_on_mesh_is_flagged(self):
        verdict = _verdict(MeshTopology(8, 8), RoutingAlgorithm.FULLY_ADAPTIVE)
        assert not verdict.deadlock_free
        assert len(verdict.witness) >= 2
        assert len(verdict.witness_text) == len(verdict.witness)

    def test_torus_xy_is_flagged_with_wraparound_witness(self):
        topology = TorusTopology(4, 4)
        verdict = _verdict(topology, RoutingAlgorithm.XY)
        assert not verdict.deadlock_free
        # The cycle lives in one dimension's wrap ring: all witness channels
        # share a direction.
        directions = {c.direction for c in verdict.witness}
        assert len(directions) == 1

    def test_witness_text_matches_channels(self):
        topology = TorusTopology(4, 4)
        verdict = _verdict(topology, RoutingAlgorithm.XY)
        assert verdict.witness_text == tuple(
            c.describe(topology) for c in verdict.witness
        )

    def test_three_ring_torus_xy_is_actually_deadlock_free(self):
        # On a 3-node wrap ring every shortest path is one hop, so packets
        # never chain two same-direction channels: no wrap cycle exists and
        # the reachability-aware CDG proves it (a naive all-turns CDG would
        # falsely flag this).
        verdict = _verdict(TorusTopology(3, 3), RoutingAlgorithm.XY)
        assert verdict.deadlock_free


WITNESS_CASES = [
    (MeshTopology(2, 2), RoutingAlgorithm.FULLY_ADAPTIVE),
    (MeshTopology(3, 3), RoutingAlgorithm.FULLY_ADAPTIVE),
    (MeshTopology(4, 4), RoutingAlgorithm.FULLY_ADAPTIVE),
    (MeshTopology(5, 3), RoutingAlgorithm.FULLY_ADAPTIVE),
    (MeshTopology(8, 8), RoutingAlgorithm.FULLY_ADAPTIVE),
    (TorusTopology(4, 4), RoutingAlgorithm.XY),
    (TorusTopology(4, 3), RoutingAlgorithm.XY),
    (TorusTopology(5, 4), RoutingAlgorithm.XY),
    (TorusTopology(4, 4), RoutingAlgorithm.FULLY_ADAPTIVE),
]


class TestWitnessSoundness:
    """Property: a reported witness is always a real cycle of its graph."""

    @pytest.mark.parametrize(
        "topology, algorithm",
        WITNESS_CASES,
        ids=lambda v: getattr(v, "value", None)
        or f"{type(v).__name__}{v.width}x{v.height}",
    )
    def test_witness_is_a_real_cycle(self, topology, algorithm):
        routing_fn = resolve_routing_function(algorithm, topology)
        graph = ChannelDependencyGraph.build(topology, routing_fn)
        cycle = graph.find_cycle()
        assert cycle is not None
        assert graph.is_cycle(cycle)
        # Each hop of the witness is physically contiguous: the next channel
        # starts at the router the previous one ends in.
        for i, channel in enumerate(cycle):
            assert cycle[(i + 1) % len(cycle)].src == channel.dst

    @pytest.mark.parametrize("width,height", [(2, 2), (3, 4), (4, 4), (8, 8)])
    @pytest.mark.parametrize(
        "algorithm", [RoutingAlgorithm.XY, RoutingAlgorithm.WEST_FIRST]
    )
    def test_mesh_dt_ad_acyclic_across_sizes(self, width, height, algorithm):
        verdict = _verdict(MeshTopology(width, height), algorithm)
        assert verdict.deadlock_free

    def test_is_cycle_rejects_non_cycles(self):
        graph = _graph(MeshTopology(4, 4), RoutingAlgorithm.XY)
        channels = graph.channels
        assert not graph.is_cycle([])
        # A single channel is a cycle only if it depends on itself.
        assert not graph.is_cycle([channels[0]])


class TestConstruction:
    def test_source_routing_is_rejected(self):
        from repro.noc.routing import SourceRouting

        with pytest.raises(ValueError, match="source routing"):
            ChannelDependencyGraph.build(MeshTopology(4, 4), SourceRouting())

    def test_num_vcs_does_not_change_the_graph(self):
        # The paper's VA grants any VC of the selected PC, so the CDG is
        # PC-granular: identical for every num_vcs.
        topology = MeshTopology(4, 4)
        one = _verdict(topology, RoutingAlgorithm.FULLY_ADAPTIVE, num_vcs=1)
        three = _verdict(topology, RoutingAlgorithm.FULLY_ADAPTIVE, num_vcs=3)
        assert one.num_channels == three.num_channels
        assert one.num_dependencies == three.num_dependencies
        assert one.deadlock_free == three.deadlock_free

    def test_verdict_to_dict_is_json_safe(self):
        import json

        verdict = _verdict(TorusTopology(4, 4), RoutingAlgorithm.XY)
        data = json.loads(json.dumps(verdict.to_dict()))
        assert data["deadlock_free"] is False
        assert data["witness"]
