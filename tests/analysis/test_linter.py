"""Linter entry points and the ``repro lint`` CLI.

The acceptance contract: linting an Eq. 1 violation or a fully-adaptive
config without deadlock recovery exits non-zero and prints the rule id
(with the witness cycle for the CDG rule).
"""

import json
from pathlib import Path

import pytest

from repro.analysis import lint_path, lint_paths
from repro.cli import main

FIXTURES = Path(__file__).parent.parent / "fixtures" / "lint"
EXAMPLES = Path(__file__).parent.parent.parent / "examples" / "configs"


class TestLintPaths:
    def test_example_configs_are_clean(self):
        report = lint_paths([EXAMPLES])
        assert len(report) == 0
        assert report.exit_code == 0

    def test_fixture_directory_aggregates_per_file(self):
        report = lint_paths([FIXTURES])
        assert report.has_errors
        sources = {d.source for d in report}
        assert str(FIXTURES / "eq1_violation.json") in sources
        assert str(FIXTURES / "adaptive_no_recovery.json") in sources

    def test_eq1_violation_file(self):
        report = lint_path(FIXTURES / "eq1_violation.json")
        assert [d.rule_id for d in report.errors] == ["NOC001"]

    def test_adaptive_no_recovery_file(self):
        report = lint_path(FIXTURES / "adaptive_no_recovery.json")
        (diag,) = report.errors
        assert diag.rule_id == "NOC004"
        assert diag.witness

    def test_torus_xy_file_flags_both_rules(self):
        report = lint_path(FIXTURES / "torus_xy_no_recovery.json")
        assert {d.rule_id for d in report.errors} == {"NOC004", "NOC008"}

    def test_broken_json_is_noc000_not_a_traceback(self):
        report = lint_path(FIXTURES / "broken.json")
        (diag,) = report.errors
        assert diag.rule_id == "NOC000"
        assert "JSON" in diag.message

    def test_warnings_do_not_fail_the_exit_code(self):
        report = lint_path(FIXTURES / "warnings_only.json")
        assert report.warnings and not report.has_errors
        assert report.exit_code == 0

    def test_missing_file_is_noc000(self):
        report = lint_path(FIXTURES / "does_not_exist.json")
        (diag,) = report.errors
        assert diag.rule_id == "NOC000"

    def test_empty_directory_warns(self, tmp_path):
        report = lint_path(tmp_path)
        assert [d.rule_id for d in report] == ["NOC000"]
        assert report.exit_code == 0


class TestLintCLI:
    def test_default_flags_are_clean(self, capsys):
        assert main(["lint"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_eq1_violation_exits_nonzero_with_rule_id(self, capsys):
        rc = main(
            ["lint", "--deadlock-recovery", "--buffer-depth", "2",
             "--flits", "8"]
        )
        assert rc == 1
        assert "NOC001" in capsys.readouterr().out

    def test_adaptive_without_recovery_prints_witness(self, capsys):
        rc = main(["lint", "--routing", "fully_adaptive"])
        assert rc == 1
        out = capsys.readouterr().out
        assert "NOC004" in out
        assert "via" in out  # the witness channels are printed

    def test_file_argument(self, capsys):
        rc = main(["lint", str(FIXTURES / "eq1_violation.json")])
        assert rc == 1
        assert "NOC001" in capsys.readouterr().out

    def test_directory_argument(self, capsys):
        assert main(["lint", str(EXAMPLES)]) == 0

    def test_json_output_is_parseable(self, capsys):
        rc = main(["lint", "--json", "--routing", "fully_adaptive"])
        assert rc == 1
        env = json.loads(capsys.readouterr().out)
        assert env["schema"] == "repro/v1"
        assert env["command"] == "lint"
        diagnostics = env["result"]
        assert diagnostics[0]["rule_id"] == "NOC004"
        assert diagnostics[0]["witness"]

    def test_rules_listing(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        assert "NOC001" in out and "NOC012" in out

    def test_no_cdg_skips_the_graph_pass(self, capsys):
        rc = main(["lint", "--no-cdg", "--routing", "fully_adaptive"])
        assert rc == 0

    def test_strict_promotes_warnings(self, capsys):
        path = str(FIXTURES / "warnings_only.json")
        assert main(["lint", path]) == 0
        capsys.readouterr()
        assert main(["lint", "--strict", path]) == 1


class TestRunCLIInvariantChecks:
    def test_run_with_invariant_checks(self, capsys):
        rc = main(
            [
                "run",
                "--width", "3", "--height", "3",
                "--messages", "80", "--warmup", "10",
                "--invariant-checks",
            ]
        )
        assert rc == 0
        assert "packets delivered" in capsys.readouterr().out


class TestCampaignLint:
    def test_campaign_aborts_on_lint_error(self):
        from repro.campaign import CampaignLintError, grid, run_campaign

        variants = grid(axes={"noc.routing": ["xy", "fully_adaptive"]})
        with pytest.raises(CampaignLintError) as excinfo:
            run_campaign(variants)
        assert excinfo.value.diagnostics[0].rule_id == "NOC004"
        assert "routing=fully_adaptive" in str(excinfo.value)

    def test_no_lint_escape_hatch_and_metadata(self):
        import warnings

        from repro.campaign import grid, run_campaign
        from repro.config import SimulationConfig, WorkloadConfig

        base = SimulationConfig(
            workload=WorkloadConfig(
                num_messages=60, warmup_messages=10, max_cycles=20_000
            )
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            variants = grid(
                base=base, axes={"noc.deadlock_recovery_enabled": [False, True]}
            )
        rows = run_campaign(variants)
        assert rows[0].diagnostics == ()
        assert [d["rule_id"] for d in rows[1].diagnostics] == ["NOC005"]
        unlinted = run_campaign(variants, lint=False)
        assert all(row.diagnostics == () for row in unlinted)
