"""The routing certification engine (``repro verify``).

Four layers:

* **Traversal verdicts** — connectivity and livelock-freedom on healthy
  meshes/tori for every routing algorithm, with the known negatives
  (torus XY deadlock, hand-built livelocking routing) producing witnesses.
* **Fault sweeps** — exhaustive single-link kills and seeded multi-kill
  samples certify the FaultAwareRouting rebuild; reproducible for a seed.
* **Simulation cross-check** — the acceptance criterion: on an exhaustive
  small-mesh sweep, every pair the engine certifies must deliver in the
  real simulator, and every pair it rejects must not (ground truth, not
  another static pass).
* **Artifact** — ``build_standard_certificate`` is deterministic and the
  committed ``CERT_routing.json`` matches it (same gate CI applies).
"""

import json
import pathlib

import pytest

from repro.analysis.verify import (
    STANDARD_SWEEP_SEED,
    both_alive_pairs,
    build_standard_certificate,
    certified_pairs,
    certify_config,
    certify_fault_trial,
    certify_routing,
    certify_traversal,
    check_expectations,
    directed_channels,
    sweep_multi_link_kills,
    sweep_single_link_kills,
)
from repro.config import FaultConfig, NoCConfig, SimulationConfig, WorkloadConfig
from repro.faults.permanent import PermanentFault, PermanentFaultSchedule
from repro.noc.network import Network
from repro.noc.packet import Packet
from repro.noc.routing import (
    FaultAwareRouting,
    SourceRouting,
    resolve_routing_function,
)
from repro.noc.topology import GraphTopology, MeshTopology, TorusTopology
from repro.types import Direction, RoutingAlgorithm

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def routing(name, topology):
    return resolve_routing_function(RoutingAlgorithm(name), topology)


class TestHealthyTraversal:
    @pytest.mark.parametrize(
        "algo", ["xy", "west_first", "fully_adaptive", "ft_table"]
    )
    def test_mesh_connected_and_livelock_free(self, algo):
        mesh = MeshTopology(4, 4)
        verdict = certify_traversal(mesh, routing(algo, mesh))
        assert verdict.connected
        assert verdict.livelock_free
        assert verdict.delivered_pairs == verdict.expected_pairs == 240
        assert verdict.missing_pairs == ()
        assert verdict.stuck_states == ()

    @pytest.mark.parametrize("algo", ["xy", "west_first", "ft_table"])
    def test_progress_metric_bound_is_the_diameter(self, algo):
        # Minimal routing on a healthy mesh: the longest remaining route
        # equals the Manhattan diameter.
        mesh = MeshTopology(4, 4)
        verdict = certify_traversal(mesh, routing(algo, mesh))
        assert verdict.max_route_length == 6

    def test_torus_xy_connected_but_not_deadlock_free(self):
        torus = TorusTopology(5, 5)
        cert = certify_routing(torus, routing("xy", torus), num_vcs=3)
        assert cert.connected
        assert cert.livelock_free
        assert not cert.deadlock_free
        assert cert.cdg.witness_text  # concrete wrap-ring witness
        assert not cert.certified

    def test_fully_adaptive_mesh_flagged_by_cdg_only(self):
        mesh = MeshTopology(4, 4)
        cert = certify_routing(mesh, routing("fully_adaptive", mesh))
        assert cert.connected and cert.livelock_free
        assert not cert.deadlock_free

    def test_source_routing_rejected(self):
        mesh = MeshTopology(3, 3)
        with pytest.raises(ValueError, match="source routing"):
            certify_traversal(mesh, SourceRouting())


class LivelockRouting:
    """Hand-built oscillator: nodes b and c bounce packets for dst 'z'."""

    def candidates(self, topology, current, flit):
        if current == flit.dst:
            return [Direction.LOCAL]
        if current == "a":
            return ["fwd"]  # a -> b
        if current == "b":
            return ["fwd"]  # b -> c
        return ["back"]  # c -> b: the oscillation


class TestNegativeTraversal:
    def oscillator(self):
        return GraphTopology(
            {
                "a": {"fwd": "b"},
                "b": {"fwd": "c", "back": "a"},
                "c": {"back": "b", "out": "z"},
                "z": {"in": "c"},
            }
        )

    def test_livelock_is_detected_with_witness(self):
        g = self.oscillator()
        verdict = certify_traversal(g, LivelockRouting())
        assert not verdict.livelock_free
        assert not verdict.connected
        assert verdict.livelock_witness  # the b <-> c oscillation
        witness = " ".join(verdict.livelock_witness)
        assert "b" in witness and "c" in witness

    def test_stuck_states_reported_as_missing_pairs(self):
        # 'sink' has no outgoing ports: anything routed into it for a
        # farther destination strands.
        g = GraphTopology({"a": {"out": "sink"}, "sink": {}})

        class IntoTheSink:
            def candidates(self, topology, current, flit):
                if current == flit.dst:
                    return [Direction.LOCAL]
                return ["out"] if current == "a" else []

        verdict = certify_traversal(g, IntoTheSink())
        assert not verdict.connected
        assert verdict.livelock_free  # stranded, not looping
        assert verdict.stuck_states
        assert "a->sink" not in verdict.missing_pairs  # sink itself reachable
        assert "sink->a" in verdict.missing_pairs


class TestBothAlivePairs:
    def test_healthy_mesh_is_all_pairs(self):
        mesh = MeshTopology(3, 3)
        assert len(both_alive_pairs(mesh)) == 72

    def test_one_dead_direction_kills_the_undirected_edge(self):
        # 3x1 path: killing 0->east alone removes edge 0-1 for the
        # expected-pairs criterion (the reverse survives only best-effort).
        path = MeshTopology(3, 1)
        pairs = both_alive_pairs(path, {(0, Direction.EAST)})
        assert pairs == frozenset({(1, 2), (2, 1)})

    def test_dead_router_is_excluded(self):
        mesh = MeshTopology(3, 3)
        pairs = both_alive_pairs(mesh, dead_routers={4})
        assert all(4 not in pair for pair in pairs)
        # Centre removal leaves the ring connected: all other pairs stay.
        assert len(pairs) == 56


class TestFaultSweeps:
    def test_single_link_kills_certify_on_mesh(self):
        mesh = MeshTopology(4, 4)
        sweep = sweep_single_link_kills(mesh)
        assert sweep.trials == len(directed_channels(mesh)) == 48
        assert sweep.certified
        assert sweep.all_connected
        assert sweep.all_deadlock_free
        assert sweep.all_livelock_free
        assert sweep.min_delivered_fraction == 1.0
        assert sweep.failures == ()

    def test_multi_kill_sweep_is_seed_reproducible(self):
        mesh = MeshTopology(4, 4)
        a = sweep_multi_link_kills(mesh, 3, 8, seed=7)
        b = sweep_multi_link_kills(mesh, 3, 8, seed=7)
        assert a.to_dict() == b.to_dict()
        assert a.trials == 8 and a.kills_per_trial == 3 and a.seed == 7
        assert a.certified

    def test_partitioning_trial_still_certifies_surviving_pairs(self):
        # Isolate corner node 0 of a 3x3 mesh (both directions of both of
        # its links): the trial certifies because expectations shrink to
        # the surviving 8-node component.
        mesh = MeshTopology(3, 3)
        kills = [
            (0, Direction.EAST),
            (1, Direction.WEST),
            (0, Direction.NORTH),
            (3, Direction.SOUTH),
        ]
        cert = certify_fault_trial(mesh, kills)
        assert cert.certified
        assert cert.traversal.expected_pairs == 56  # 8 * 7
        assert cert.traversal.delivered_pairs == 56

    def test_disconnection_against_all_pairs_is_flagged(self):
        # Same kill set, but demanding all 72 pairs: connectivity fails
        # and the missing pairs name node 0.
        mesh = MeshTopology(3, 3)
        fn = FaultAwareRouting(
            mesh,
            dead_links=[
                (0, Direction.EAST),
                (1, Direction.WEST),
                (0, Direction.NORTH),
                (3, Direction.SOUTH),
            ],
        )
        verdict = certify_traversal(mesh, fn)  # expected = all pairs
        assert not verdict.connected
        assert verdict.missing_pairs
        assert all("(0,0)" in pair for pair in verdict.missing_pairs)


def single_packet_network(schedule):
    """A quiet 3x3 ft_table network with ``schedule`` applied at cycle 0."""
    config = SimulationConfig(
        noc=NoCConfig(
            width=3, height=3, routing=RoutingAlgorithm.FT_TABLE, num_vcs=2
        ),
        faults=FaultConfig(rates={}, permanent=schedule, seed=1),
        workload=WorkloadConfig(
            injection_rate=0.01, num_messages=1, warmup_messages=0, seed=1
        ),
    )
    return Network(config)


class TestSimulationCrossCheck:
    """Acceptance: static certification agrees with the simulator.

    Exhaustive over every ordered (src, dst) pair of a degraded 3x3 mesh:
    inject exactly one packet per pair into a real :class:`Network` and
    step until it is finalized.  Certified pairs must be *delivered*;
    uncertified pairs must be refused or dropped — in both directions, so
    the engine is neither optimistic nor pessimistic.
    """

    SCHEDULES = {
        "single_dead_link": [("link", 4, Direction.EAST)],
        "bidirectional_cut": [
            ("link", 4, Direction.EAST),
            ("link", 5, Direction.WEST),
        ],
        "isolated_corner": [
            ("link", 0, Direction.EAST),
            ("link", 1, Direction.WEST),
            ("link", 0, Direction.NORTH),
            ("link", 3, Direction.SOUTH),
        ],
        "dead_router": [("router", 4, None)],
    }

    @pytest.mark.parametrize("name", sorted(SCHEDULES))
    def test_certified_iff_delivered(self, name):
        faults = [
            PermanentFault(kind, node, direction)
            for kind, node, direction in self.SCHEDULES[name]
        ]
        schedule = PermanentFaultSchedule.of(*faults)
        net = single_packet_network(schedule)
        # The engine's view of the same platform.
        topology = MeshTopology(3, 3)
        fn = FaultAwareRouting(topology)
        fn.rebuild(
            {
                (f.node, f.direction)
                for f in schedule
                if f.kind == "link"
            },
            {f.node for f in schedule if f.kind == "router"},
        )
        certified = certified_pairs(topology, fn)

        dead_routers = {f.node for f in schedule if f.kind == "router"}
        packet_id = 0
        for src in topology.nodes():
            for dst in topology.nodes():
                if src == dst or src in dead_routers or dst in dead_routers:
                    continue
                packet_id += 1
                finalized = net.completed
                delivered_before = net.delivered
                net.interfaces[src].enqueue(
                    Packet(packet_id, src, dst, 2, net.cycle)
                )
                for _ in range(400):
                    net.step()
                    if net.completed > finalized:
                        break
                else:
                    pytest.fail(f"packet {src}->{dst} never finalized")
                delivered = net.delivered > delivered_before
                assert delivered == ((src, dst) in certified), (
                    f"{name}: static={((src, dst) in certified)} but "
                    f"simulated delivery={delivered} for {src}->{dst}"
                )

    def test_healthy_mesh_delivers_every_certified_pair(self):
        net = single_packet_network(PermanentFaultSchedule.empty())
        topology = MeshTopology(3, 3)
        certified = certified_pairs(topology, FaultAwareRouting(topology))
        assert len(certified) == 72  # the engine promises everything...
        packet_id = 0
        for src, dst in sorted(certified):
            packet_id += 1
            before = net.delivered
            net.interfaces[src].enqueue(Packet(packet_id, src, dst, 2, net.cycle))
            for _ in range(400):
                net.step()
                if net.delivered > before:
                    break
            else:
                pytest.fail(f"certified pair {src}->{dst} was not delivered")


class TestConfigCertification:
    def test_degraded_config_certifies_what_will_run(self):
        schedule = PermanentFaultSchedule.of(
            PermanentFault("link", 5, Direction.EAST)
        )
        config = SimulationConfig(
            noc=NoCConfig(width=4, height=4, routing=RoutingAlgorithm.XY),
            faults=FaultConfig(rates={}, permanent=schedule, seed=1),
        )
        entry = certify_config(config)
        assert entry["routing"]["certified"]
        assert entry["platform"]["permanent_faults"] == schedule.to_dicts()

    def test_sweeps_attach_when_requested(self):
        config = SimulationConfig(
            noc=NoCConfig(width=3, height=3, routing=RoutingAlgorithm.FT_TABLE)
        )
        entry = certify_config(
            config, single_link_kills=True, multi_kills=(2,), samples=4
        )
        assert entry["single_link_kills"]["certified"]
        assert entry["single_link_kills"]["trials"] == 24
        (multi,) = entry["multi_link_kills"]
        assert multi["kills_per_trial"] == 2
        assert multi["seed"] == STANDARD_SWEEP_SEED

    def test_entry_is_json_round_trippable(self):
        config = SimulationConfig(noc=NoCConfig(width=3, height=3))
        entry = certify_config(config)
        assert json.loads(json.dumps(entry)) == entry


class TestStandardArtifact:
    def test_build_is_deterministic(self):
        a = build_standard_certificate()
        b = build_standard_certificate()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_committed_artifact_is_current(self):
        """The CI gate, as a test: CERT_routing.json must be regenerable."""
        artifact = REPO_ROOT / "CERT_routing.json"
        assert artifact.exists(), "CERT_routing.json is not committed"
        committed = json.loads(artifact.read_text())
        assert committed == build_standard_certificate()

    def test_expectations_hold(self):
        certificate = build_standard_certificate()
        problems = []
        for entry in certificate["targets"]:
            problems.extend(check_expectations(entry, entry["expect"]))
        assert problems == []

    def test_expectation_mismatch_is_reported(self):
        certificate = build_standard_certificate()
        entry = certificate["targets"][0]
        problems = check_expectations(entry, {"certified": False})
        assert len(problems) == 1
        assert "expected certified=False" in problems[0]

    def test_torus_target_pins_the_witness(self):
        certificate = build_standard_certificate()
        torus = [
            t for t in certificate["targets"] if t["name"] == "torus5x5_xy"
        ][0]
        assert not torus["routing"]["certified"]
        assert not torus["routing"]["deadlock_free"]
        assert torus["routing"]["witness"]
