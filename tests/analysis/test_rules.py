"""Config lint rule catalogue tests: every NOC rule fires and stays quiet
on the conditions it documents, and the ids are stable public contract."""

import warnings

import pytest

from repro.analysis import lint_config, lint_dict
from repro.analysis.diagnostics import Severity
from repro.analysis.rules import iter_rules
from repro.config import (
    FaultConfig,
    NoCConfig,
    SimulationConfig,
    WorkloadConfig,
)
from repro.serialization import config_to_dict
from repro.types import FaultSite, RoutingAlgorithm


def make_config(noc=None, faults=None, workload=None):
    """Build a config, swallowing construction-time advisories (the linter
    reports the same conditions with ids)."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        return SimulationConfig(
            noc=NoCConfig(**(noc or {})),
            faults=faults or FaultConfig.fault_free(),
            workload=WorkloadConfig(**(workload or {})),
        )


def rule_ids(report):
    return [d.rule_id for d in report]


class TestCatalogue:
    def test_ids_are_stable_and_ordered(self):
        ids = [entry.rule_id for entry in iter_rules()]
        assert ids == [f"NOC{n:03d}" for n in range(1, 17)]

    def test_paper_baseline_is_clean(self):
        assert len(lint_config(make_config())) == 0


class TestNOC001BufferBound:
    def test_fires_on_violated_bound(self):
        report = lint_config(
            make_config(
                noc=dict(
                    deadlock_recovery_enabled=True,
                    vc_buffer_depth=2,
                    flits_per_packet=8,
                )
            )
        )
        (diag,) = report.by_rule("NOC001")
        assert diag.severity is Severity.ERROR
        assert "retx_buffer_depth" in diag.hint

    def test_quiet_when_bound_holds_or_recovery_off(self):
        ok = make_config(noc=dict(deadlock_recovery_enabled=True))
        assert not lint_config(ok).by_rule("NOC001")
        off = make_config(noc=dict(vc_buffer_depth=2, flits_per_packet=8))
        assert not lint_config(off).by_rule("NOC001")

    def test_post_init_warns_on_violated_bound(self):
        with pytest.warns(UserWarning, match="NOC001"):
            NoCConfig(
                deadlock_recovery_enabled=True,
                vc_buffer_depth=2,
                flits_per_packet=8,
            )

    def test_post_init_silent_when_bound_holds(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            NoCConfig(deadlock_recovery_enabled=True)


class TestNOC002RetxDepth:
    def test_fires_on_raw_dict_the_constructor_rejects(self):
        data = config_to_dict(make_config())
        data["noc"]["retx_buffer_depth"] = 2
        report = lint_dict(data)
        ids = rule_ids(report)
        assert "NOC000" in ids and "NOC002" in ids
        assert report.has_errors


class TestNOC003Threshold:
    def test_unreachable_threshold_is_an_error(self):
        report = lint_config(
            make_config(
                noc=dict(deadlock_recovery_enabled=True, deadlock_threshold=500),
                workload=dict(max_cycles=400),
            )
        )
        (diag,) = report.by_rule("NOC003")
        assert diag.severity is Severity.ERROR

    def test_hair_trigger_threshold_is_a_warning(self):
        report = lint_config(
            make_config(
                noc=dict(deadlock_recovery_enabled=True, deadlock_threshold=3)
            )
        )
        (diag,) = report.by_rule("NOC003")
        assert diag.severity is Severity.WARNING

    def test_quiet_without_recovery(self):
        report = lint_config(
            make_config(noc=dict(deadlock_threshold=3))
        )
        assert not report.by_rule("NOC003")


class TestNOC004CyclicCDG:
    def test_fires_with_witness(self):
        report = lint_config(
            make_config(noc=dict(routing=RoutingAlgorithm.FULLY_ADAPTIVE))
        )
        (diag,) = report.by_rule("NOC004")
        assert diag.severity is Severity.ERROR
        assert diag.witness  # the concrete channel cycle

    def test_quiet_with_recovery_enabled(self):
        report = lint_config(
            make_config(
                noc=dict(
                    routing=RoutingAlgorithm.FULLY_ADAPTIVE,
                    deadlock_recovery_enabled=True,
                )
            )
        )
        assert not report.by_rule("NOC004")

    def test_quiet_when_cdg_pass_skipped(self):
        report = lint_config(
            make_config(noc=dict(routing=RoutingAlgorithm.FULLY_ADAPTIVE)),
            cdg=False,
        )
        assert not report.by_rule("NOC004")


class TestNOC005DeadMachinery:
    def test_fires_on_recovery_over_acyclic_cdg(self):
        report = lint_config(
            make_config(noc=dict(deadlock_recovery_enabled=True))
        )
        (diag,) = report.by_rule("NOC005")
        assert diag.severity is Severity.WARNING


class TestNOC006FaultRates:
    def test_out_of_range_rate_is_an_error(self):
        data = config_to_dict(make_config())
        data["faults"]["rates"]["link"] = 2.0
        report = lint_dict(data)
        assert any(
            d.rule_id == "NOC006" and d.severity is Severity.ERROR
            for d in report
        )

    def test_non_numeric_rate_is_an_error(self):
        data = config_to_dict(make_config())
        data["faults"]["rates"]["link"] = "lots"
        report = lint_dict(data)
        assert any(
            d.rule_id == "NOC006" and d.severity is Severity.ERROR
            for d in report
        )

    def test_stress_rate_is_a_warning(self):
        report = lint_config(
            make_config(faults=FaultConfig.link_only(0.2))
        )
        (diag,) = report.by_rule("NOC006")
        assert diag.severity is Severity.WARNING


class TestNOC007VCDepth:
    def test_fires_when_buffer_smaller_than_packet(self):
        report = lint_config(
            make_config(noc=dict(vc_buffer_depth=2, flits_per_packet=4))
        )
        (diag,) = report.by_rule("NOC007")
        assert diag.severity is Severity.WARNING


class TestNOC008TorusXY:
    def test_error_without_recovery(self):
        report = lint_config(make_config(noc=dict(topology="torus")))
        (diag,) = report.by_rule("NOC008")
        assert diag.severity is Severity.ERROR

    def test_warning_with_recovery(self):
        report = lint_config(
            make_config(
                noc=dict(topology="torus", deadlock_recovery_enabled=True)
            )
        )
        (diag,) = report.by_rule("NOC008")
        assert diag.severity is Severity.WARNING

    def test_quiet_on_torus_with_adaptive_routing(self):
        report = lint_config(
            make_config(
                noc=dict(
                    topology="torus",
                    routing=RoutingAlgorithm.WEST_FIRST,
                    deadlock_recovery_enabled=True,
                )
            )
        )
        assert not report.by_rule("NOC008")

    def test_network_construction_warns(self):
        """The regression the linter guards statically also warns at
        construction time, so even direct Network users hear about it."""
        from repro.noc.network import Network

        with pytest.warns(UserWarning, match="NOC008"):
            Network(make_config(noc=dict(topology="torus", width=4, height=4)))

    def test_network_construction_quiet_with_recovery(self):
        from repro.noc.network import Network

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            Network(
                make_config(
                    noc=dict(
                        topology="torus",
                        width=4,
                        height=4,
                        deadlock_recovery_enabled=True,
                    )
                )
            )


class TestNOC009InjectionRate:
    def test_superunity_rate_is_an_error(self):
        report = lint_config(make_config(workload=dict(injection_rate=1.5)))
        (diag,) = report.by_rule("NOC009")
        assert diag.severity is Severity.ERROR

    def test_saturated_rate_is_a_warning(self):
        report = lint_config(make_config(workload=dict(injection_rate=0.6)))
        (diag,) = report.by_rule("NOC009")
        assert diag.severity is Severity.WARNING


class TestNOC010CycleBudget:
    def test_fires_on_implausible_budget(self):
        report = lint_config(
            make_config(
                workload=dict(
                    num_messages=2000, warmup_messages=500, max_cycles=600
                )
            )
        )
        (diag,) = report.by_rule("NOC010")
        assert diag.severity is Severity.WARNING


class TestNOC011HandshakeTMR:
    def test_fires_on_ablation(self):
        report = lint_config(
            make_config(
                noc=dict(handshake_tmr=False),
                faults=FaultConfig.single_site(FaultSite.HANDSHAKE, 0.001),
            )
        )
        (diag,) = report.by_rule("NOC011")
        assert diag.severity is Severity.WARNING

    def test_quiet_without_handshake_faults(self):
        report = lint_config(make_config(noc=dict(handshake_tmr=False)))
        assert not report.by_rule("NOC011")


class TestNOC012ACUnit:
    def test_fires_on_ablation(self):
        report = lint_config(
            make_config(
                noc=dict(ac_unit_enabled=False),
                faults=FaultConfig.single_site(FaultSite.VC_ALLOC, 0.001),
            )
        )
        (diag,) = report.by_rule("NOC012")
        assert diag.severity is Severity.WARNING

    def test_quiet_without_logic_faults(self):
        report = lint_config(make_config(noc=dict(ac_unit_enabled=False)))
        assert not report.by_rule("NOC012")


class TestNOC013PermanentRerouting:
    def _schedule(self):
        import dataclasses

        from repro.faults.permanent import PermanentFault, PermanentFaultSchedule
        from repro.types import Direction

        return dataclasses.replace(
            FaultConfig.fault_free(),
            permanent=PermanentFaultSchedule.of(
                PermanentFault("link", 5, Direction.EAST)
            ),
        )

    def test_fires_for_non_reroutable_routing(self):
        report = lint_config(
            make_config(
                noc=dict(routing=RoutingAlgorithm.WEST_FIRST),
                faults=self._schedule(),
            )
        )
        (diag,) = report.by_rule("NOC013")
        assert diag.severity is Severity.WARNING
        assert "ft_table" in diag.hint

    def test_quiet_for_fault_aware_routing(self):
        report = lint_config(make_config(faults=self._schedule()))
        assert not report.by_rule("NOC013")

    def test_quiet_without_permanent_faults(self):
        report = lint_config(
            make_config(noc=dict(routing=RoutingAlgorithm.WEST_FIRST))
        )
        assert not report.by_rule("NOC013")

    def test_fires_for_wear_out_escalation(self):
        import dataclasses

        from repro.faults.intermittent import (
            IntermittentFault,
            IntermittentFaultSchedule,
            WearOutConfig,
        )
        from repro.types import Direction

        faults = dataclasses.replace(
            FaultConfig.fault_free(),
            intermittent=IntermittentFaultSchedule.of(
                IntermittentFault(5, Direction.EAST, 0.2, 10.0, 90.0)
            ),
            wear_out=WearOutConfig(threshold=50.0),
        )
        report = lint_config(
            make_config(
                noc=dict(routing=RoutingAlgorithm.WEST_FIRST), faults=faults
            )
        )
        (diag,) = report.by_rule("NOC013")
        assert "wear-out" in diag.message

    def test_quiet_for_intermittent_without_wear_out(self):
        import dataclasses

        from repro.faults.intermittent import (
            IntermittentFault,
            IntermittentFaultSchedule,
        )
        from repro.types import Direction

        # Bursts alone never kill hardware; nothing to reroute around.
        faults = dataclasses.replace(
            FaultConfig.fault_free(),
            intermittent=IntermittentFaultSchedule.of(
                IntermittentFault(5, Direction.EAST, 0.2, 10.0, 90.0)
            ),
        )
        report = lint_config(
            make_config(
                noc=dict(routing=RoutingAlgorithm.WEST_FIRST), faults=faults
            )
        )
        assert not report.by_rule("NOC013")


class TestNOC014PartitionAtCycleZero:
    def _faults(self, *faults):
        import dataclasses

        from repro.faults.permanent import PermanentFaultSchedule

        return dataclasses.replace(
            FaultConfig.fault_free(),
            permanent=PermanentFaultSchedule.of(*faults),
        )

    def test_fires_when_a_corner_is_severed(self):
        from repro.faults.permanent import PermanentFault
        from repro.types import Direction

        # Kill both links out of corner (0,0) of a 3x3, both directions:
        # node 0 survives but can talk to nobody.
        report = lint_config(
            make_config(
                noc=dict(width=3, height=3),
                faults=self._faults(
                    PermanentFault("link", 0, Direction.EAST),
                    PermanentFault("link", 1, Direction.WEST),
                    PermanentFault("link", 0, Direction.NORTH),
                    PermanentFault("link", 3, Direction.SOUTH),
                ),
            )
        )
        (diag,) = report.by_rule("NOC014")
        assert diag.severity is Severity.WARNING
        assert "partitions" in diag.message
        # 8 surviving partners x 2 directions = 16 severed ordered pairs.
        assert "16 of 72" in diag.message

    def test_dead_vc_partitions_only_when_it_is_the_only_vc(self):
        from repro.faults.permanent import PermanentFault
        from repro.types import Direction

        faults = self._faults(
            PermanentFault("vc", 0, Direction.EAST, vc=0),
            PermanentFault("vc", 1, Direction.WEST, vc=0),
        )
        single_vc = lint_config(
            make_config(noc=dict(width=2, height=1, num_vcs=1), faults=faults)
        )
        assert single_vc.by_rule("NOC014")
        multi_vc = lint_config(
            make_config(noc=dict(width=2, height=1, num_vcs=3), faults=faults)
        )
        assert not multi_vc.by_rule("NOC014")

    def test_quiet_when_dead_router_explains_all_loss(self):
        from repro.faults.permanent import PermanentFault

        # A dead router removes itself from the expectation: the survivors
        # of a 3x3 minus the center stay connected around the rim.
        report = lint_config(
            make_config(
                noc=dict(width=3, height=3),
                faults=self._faults(PermanentFault("router", 4)),
            )
        )
        assert not report.by_rule("NOC014")

    def test_quiet_for_late_partitions(self):
        from repro.faults.permanent import PermanentFault
        from repro.types import Direction

        # The same cut scheduled mid-run is degradation, not a broken
        # platform definition: NOC014 only judges cycle 0.
        report = lint_config(
            make_config(
                noc=dict(width=2, height=1),
                faults=self._faults(
                    PermanentFault("link", 0, Direction.EAST, cycle=500),
                    PermanentFault("link", 1, Direction.WEST, cycle=500),
                ),
            )
        )
        assert not report.by_rule("NOC014")

    def test_quiet_for_survivable_kills(self):
        from repro.faults.permanent import PermanentFault
        from repro.types import Direction

        report = lint_config(
            make_config(
                noc=dict(width=3, height=3),
                faults=self._faults(PermanentFault("link", 0, Direction.EAST)),
            )
        )
        assert not report.by_rule("NOC014")


class TestNOC015BurstOutlastsRetx:
    def _faults(self, rate=0.8, mean_on=60.0):
        import dataclasses

        from repro.faults.intermittent import (
            IntermittentFault,
            IntermittentFaultSchedule,
        )
        from repro.types import Direction

        return dataclasses.replace(
            FaultConfig.fault_free(),
            intermittent=IntermittentFaultSchedule.of(
                IntermittentFault(12, Direction.EAST, rate, mean_on, 200.0)
            ),
        )

    def test_fires_for_long_hot_burst_under_hbh(self):
        # Give-up window = max_nack_retries(8) * MIN_RETX_DEPTH(3) = 24
        # cycles; a 60-cycle on-window at rate 0.8 covers it with margin.
        report = lint_config(make_config(faults=self._faults()))
        (diag,) = report.by_rule("NOC015")
        assert diag.severity is Severity.WARNING
        assert "12:east" in diag.message
        assert diag.witness
        assert any("give-up" in line for line in diag.witness)

    def test_quiet_for_short_bursts(self):
        report = lint_config(make_config(faults=self._faults(mean_on=10.0)))
        assert not report.by_rule("NOC015")

    def test_quiet_for_mild_strike_rates(self):
        # A 0.1-rate burst rarely corrupts the same flit's replays too;
        # give-up is a tail risk, not the expected outcome.
        report = lint_config(make_config(faults=self._faults(rate=0.1)))
        assert not report.by_rule("NOC015")

    def test_quiet_for_non_hbh_schemes(self):
        from repro.types import LinkProtection

        report = lint_config(
            make_config(
                noc=dict(link_protection=LinkProtection.E2E),
                faults=self._faults(),
            )
        )
        assert not report.by_rule("NOC015")

    def test_raised_retries_widen_the_window(self):
        report = lint_config(
            make_config(
                noc=dict(max_nack_retries=32), faults=self._faults(mean_on=60.0)
            )
        )
        assert not report.by_rule("NOC015")


class TestNOC016CheckpointIntervalExceedsRun:
    def _config(self, interval, max_cycles=1000):
        return make_config(workload=dict(max_cycles=max_cycles)).replace(
            checkpoint_interval=interval,
            checkpoint_path="variant.ckpt" if interval is not None else None,
        )

    def test_fires_when_interval_exceeds_max_cycles(self):
        report = lint_config(self._config(5000))
        (diag,) = report.by_rule("NOC016")
        assert diag.severity is Severity.WARNING
        assert "5000" in diag.message and "1000" in diag.message
        assert "restart from cycle 0" in diag.message
        assert diag.witness

    def test_fires_on_the_equal_boundary(self):
        # interval == max_cycles: the run terminates *at* the cycle the
        # first checkpoint would fire, so nothing durable ever lands.
        report = lint_config(self._config(1000))
        assert report.by_rule("NOC016")

    def test_quiet_when_checkpoints_actually_fire(self):
        report = lint_config(self._config(100))
        assert not report.by_rule("NOC016")

    def test_quiet_without_checkpointing(self):
        report = lint_config(self._config(None))
        assert not report.by_rule("NOC016")
