"""Invariant sanitizer tests.

Two directions: healthy runs — including fault-injection and recovery runs,
where the counters must balance — stay silent; and corrupted state (either
synthetically tampered or produced by real undetected allocation faults)
trips the matching SIM rule.
"""

import pytest

from repro.analysis.sanitizer import InvariantSanitizer, InvariantViolationError
from repro.config import (
    FaultConfig,
    NoCConfig,
    SimulationConfig,
    WorkloadConfig,
)
from repro.noc.simulator import Simulator
from repro.types import FaultSite, RoutingAlgorithm, VCState


def make_sim(noc=None, faults=None, rate=0.25, messages=300, seed=7):
    config = SimulationConfig(
        noc=NoCConfig(width=4, height=4, **(noc or {})),
        faults=faults or FaultConfig.fault_free(),
        workload=WorkloadConfig(
            injection_rate=rate,
            num_messages=messages,
            warmup_messages=50,
            max_cycles=40_000,
            seed=seed,
        ),
        invariant_checks=True,
    )
    return Simulator(config)


class TestHealthyRunsStaySilent:
    def test_fault_free_run(self):
        sim = make_sim()
        result = sim.run()
        assert result.packets_delivered >= 300
        assert sim.sanitizer.checks_run == result.cycles
        assert not sim.sanitizer.violations

    def test_hbh_link_fault_run_conserves_flits(self):
        # Retransmissions, NACKs and drops all hit the conservation ledger.
        sim = make_sim(
            faults=FaultConfig.link_only(0.02, multi_bit_fraction=1.0)
        )
        result = sim.run()
        assert result.counter("flits_retransmitted") > 0
        assert not sim.sanitizer.violations

    def test_deadlock_recovery_run_conserves_flits(self):
        sim = make_sim(
            noc=dict(
                routing=RoutingAlgorithm.FULLY_ADAPTIVE,
                deadlock_recovery_enabled=True,
            ),
            rate=0.35,
        )
        sim.run()
        assert not sim.sanitizer.violations

    def test_va_faults_with_ac_enabled_are_corrected(self):
        # The AC unit catches every misallocation before it becomes state.
        sim = make_sim(
            faults=FaultConfig.single_site(FaultSite.VC_ALLOC, 0.01)
        )
        result = sim.run()
        assert result.counter("va_errors_corrected") > 0
        assert not sim.sanitizer.violations


class TestRealFaultsAreCaught:
    def test_va_faults_without_ac_trip_the_sanitizer(self):
        # With the AC disabled, an undetected VA fault installs an illegal
        # grant; the sanitizer is the cross-check that notices.
        sim = make_sim(
            noc=dict(ac_unit_enabled=False),
            faults=FaultConfig.single_site(FaultSite.VC_ALLOC, 0.05, seed=1),
            rate=0.3,
            messages=400,
            seed=1,
        )
        with pytest.raises(InvariantViolationError) as excinfo:
            sim.run()
        ids = {d.rule_id for d in excinfo.value.diagnostics}
        assert ids <= {"SIM102", "SIM103"} and ids

    def test_sa_faults_without_ac_disable_conservation_with_notice(self):
        # Undetected SA faults create stray flit copies by design; the
        # sanitizer reports one INFO notice and mutes SIM101, rather than
        # drowning the ablation in false errors.
        sim = make_sim(
            noc=dict(ac_unit_enabled=False),
            faults=FaultConfig.single_site(FaultSite.SW_ALLOC, 0.01, seed=3),
            rate=0.3,
            messages=200,
            seed=3,
        )
        sim.sanitizer.raise_on_violation = False
        result = sim.run()
        assert result.counter("sa_misdirected_flits") > 0
        infos = sim.sanitizer.report.by_rule("SIM101")
        assert len(infos) == 1
        assert "disabled" in infos[0].message
        # Strays corrupt downstream wormhole state too — those detections
        # are real (SIM102/SIM103), only conservation is muted.
        assert all(
            d.rule_id in ("SIM102", "SIM103") for d in sim.sanitizer.violations
        )


def _find_active_ivc(sim):
    """Step the simulator until some input VC holds an output grant."""
    for _ in range(200):
        sim._generate_traffic(sim.network.cycle)
        sim.network.step()
        for router in sim.network.routers:
            for port_vcs in router.inputs:
                for ivc in port_vcs:
                    if ivc.state is VCState.ACTIVE:
                        return router, ivc
    raise AssertionError("no VC ever became ACTIVE")


class TestSyntheticCorruption:
    """Tamper with live state and check the exact rule that fires."""

    def make_quiet_sim(self):
        sim = make_sim(rate=0.3)
        sim.sanitizer.raise_on_violation = False
        return sim

    def test_sim101_missing_flit(self):
        sim = self.make_quiet_sim()
        for _ in range(200):
            sim._generate_traffic(sim.network.cycle)
            sim.network.step()
            buffered = [
                ivc
                for router in sim.network.routers
                for port_vcs in router.inputs
                for ivc in port_vcs
                if len(ivc.buffer)
            ]
            if buffered:
                break
        assert buffered, "traffic never buffered a flit"
        buffered[0].buffer.pop()  # a flit vanishes without a counter
        violations = sim.sanitizer.check()
        assert [d.rule_id for d in violations] == ["SIM101"]
        assert violations[0].witness  # the accounting breakdown

    def test_sim102_stranded_grant(self):
        sim = self.make_quiet_sim()
        router, ivc = _find_active_ivc(sim)
        channel = router.outputs[ivc.out_port][ivc.out_vc]
        channel.allocated_to = None  # the channel forgets its owner
        violations = sim.sanitizer.check()
        assert any(d.rule_id == "SIM102" for d in violations)
        assert any("stranded" in d.message for d in violations)

    def test_sim102_dangling_allocation(self):
        sim = self.make_quiet_sim()
        router, ivc = _find_active_ivc(sim)
        # Point a *different, free* output channel at an idle input VC.
        for port, channels in enumerate(router.outputs):
            for channel in channels:
                if channel.allocated_to is None:
                    idle = next(
                        v
                        for pv in router.inputs
                        for v in pv
                        if v.state is VCState.IDLE
                    )
                    channel.allocated_to = idle.key
                    violations = sim.sanitizer.check()
                    assert any(
                        d.rule_id == "SIM102" and "dangling" in d.message
                        for d in violations
                    )
                    return
        raise AssertionError("no free output channel to corrupt")

    def test_sim102_duplicate_grant(self):
        sim = self.make_quiet_sim()
        router, ivc = _find_active_ivc(sim)
        other = next(
            v
            for pv in router.inputs
            for v in pv
            if v is not ivc and v.state is VCState.IDLE
        )
        other.state = VCState.ACTIVE
        other.out_port = ivc.out_port
        other.out_vc = ivc.out_vc
        violations = sim.sanitizer.check()
        assert any(
            d.rule_id == "SIM102" and "duplicate" in d.message
            for d in violations
        )

    def test_sim103_out_of_range_grant(self):
        sim = self.make_quiet_sim()
        _, ivc = _find_active_ivc(sim)
        ivc.out_vc = 99
        violations = sim.sanitizer.check()
        assert any(
            d.rule_id == "SIM103" and "out-of-range" in d.message
            for d in violations
        )

    def test_raise_on_violation_carries_diagnostics(self):
        sim = make_sim(rate=0.3)  # raise_on_violation stays True
        _, ivc = _find_active_ivc(sim)
        ivc.out_vc = 99
        with pytest.raises(InvariantViolationError) as excinfo:
            sim.sanitizer.check()
        # The corrupted grant trips both the allocation cross-check (the
        # owned channel now dangles) and the state-machine check.
        ids = {d.rule_id for d in excinfo.value.diagnostics}
        assert "SIM103" in ids
        assert "SIM103" in str(excinfo.value)
