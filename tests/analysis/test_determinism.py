"""The DET determinism analyzer: one purpose-built bad snippet per rule.

Each rule gets a minimal offending snippet (must flag) and a corrected
twin (must not flag), plus the ``# det: ok`` suppression contract.  The
final test locks in the tree-wide guarantee CI enforces: ``src/repro``
itself scans clean.
"""

import pathlib
import subprocess
import sys

import pytest

from repro.analysis.determinism import (
    DET_RULES,
    Finding,
    main,
    rule_catalogue,
    scan_paths,
    scan_source,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent.parent


def rule_ids(source):
    return [f.rule_id for f in scan_source(source)]


class TestDet001SetIteration:
    def test_for_over_set_literal(self):
        assert rule_ids("for x in {1, 2, 3}:\n    pass\n") == ["DET001"]

    def test_for_over_set_call(self):
        assert rule_ids("for x in set(items):\n    pass\n") == ["DET001"]

    def test_for_over_frozenset_call(self):
        assert rule_ids("for x in frozenset(items):\n    pass\n") == ["DET001"]

    def test_comprehension_over_set_comp(self):
        assert rule_ids("ys = [y for y in {f(x) for x in xs}]\n") == ["DET001"]

    def test_list_of_set_is_flagged(self):
        assert rule_ids("order = list({3, 1, 2})\n") == ["DET001"]

    def test_sorted_set_is_clean(self):
        assert rule_ids("for x in sorted({1, 2, 3}):\n    pass\n") == []

    def test_iterating_a_list_is_clean(self):
        assert rule_ids("for x in [1, 2, 3]:\n    pass\n") == []

    def test_set_membership_is_clean(self):
        # Building and probing sets is fine; only *iteration order* leaks.
        assert rule_ids("seen = {1, 2}\nhit = 3 in seen\n") == []


class TestDet002FilesystemOrder:
    def test_listdir_in_for(self):
        assert rule_ids(
            "import os\nfor name in os.listdir(path):\n    pass\n"
        ) == ["DET002"]

    def test_scandir_assignment(self):
        assert rule_ids("entries = os.scandir(path)\n") == ["DET002"]

    def test_path_glob(self):
        assert rule_ids("files = root.glob('*.json')\n") == ["DET002"]

    def test_path_rglob(self):
        assert rule_ids("files = root.rglob('*.py')\n") == ["DET002"]

    def test_iterdir(self):
        assert rule_ids("for p in root.iterdir():\n    pass\n") == ["DET002"]

    def test_sorted_listing_is_clean(self):
        assert rule_ids("names = sorted(os.listdir(path))\n") == []
        assert rule_ids("files = sorted(root.rglob('*.py'))\n") == []


class TestDet003WallClock:
    def test_time_time(self):
        assert rule_ids("start = time.time()\n") == ["DET003"]

    def test_perf_counter(self):
        assert rule_ids("t0 = time.perf_counter()\n") == ["DET003"]

    def test_monotonic(self):
        assert rule_ids("deadline = time.monotonic() + 5\n") == ["DET003"]

    def test_datetime_now(self):
        assert rule_ids("stamp = datetime.now()\n") == ["DET003"]

    def test_datetime_utcnow_qualified(self):
        assert rule_ids("stamp = datetime.datetime.utcnow()\n") == ["DET003"]

    def test_time_sleep_is_clean(self):
        # sleep() affects pacing, not simulated state.
        assert rule_ids("time.sleep(0.1)\n") == []

    def test_unrelated_now_method_is_clean(self):
        assert rule_ids("value = schedule.now()\n") == []


class TestDet004GlobalRandom:
    def test_module_call(self):
        assert rule_ids("x = random.random()\n") == ["DET004"]

    def test_module_choice(self):
        assert rule_ids("pick = random.choice(options)\n") == ["DET004"]

    def test_module_seed(self):
        assert rule_ids("random.seed(42)\n") == ["DET004"]

    def test_from_import_is_tracked(self):
        assert rule_ids(
            "from random import choice\npick = choice(options)\n"
        ) == ["DET004"]

    def test_from_import_alias_is_tracked(self):
        assert rule_ids(
            "from random import shuffle as mix\nmix(items)\n"
        ) == ["DET004"]

    def test_local_instance_is_clean(self):
        assert rule_ids(
            "rng = random.Random(7)\nx = rng.random()\n"
        ) == []

    def test_unrelated_choice_name_is_clean(self):
        assert rule_ids("pick = choice(options)\n") == []


class TestDet005OrderByIdentity:
    def test_sorted_key_id(self):
        assert rule_ids("items.sort(key=id)\n") == ["DET005"]
        assert rule_ids("ordered = sorted(items, key=id)\n") == ["DET005"]

    def test_min_key_id(self):
        assert rule_ids("first = min(items, key=id)\n") == ["DET005"]

    def test_stable_key_is_clean(self):
        assert rule_ids("ordered = sorted(items, key=len)\n") == []


class TestDet006BuiltinHash:
    def test_hash_call(self):
        assert rule_ids("bucket = hash(name) % 8\n") == ["DET006"]

    def test_crc32_is_clean(self):
        assert rule_ids("bucket = zlib.crc32(name.encode()) % 8\n") == []

    def test_hashlib_method_is_clean(self):
        assert rule_ids("digest = hashlib.sha256(blob).hexdigest()\n") == []


class TestSuppression:
    def test_marker_on_flagged_line_suppresses(self):
        assert rule_ids("start = time.time()  # det: ok — progress bar\n") == []

    def test_marker_on_other_line_does_not(self):
        src = "# det: ok\nstart = time.time()\n"
        assert rule_ids(src) == ["DET003"]

    def test_marker_only_covers_its_own_line(self):
        src = (
            "a = time.time()  # det: ok\n"
            "b = time.time()\n"
        )
        findings = scan_source(src)
        assert [f.line for f in findings] == [2]


class TestFindingsAndCatalogue:
    def test_finding_format_and_dict(self):
        (finding,) = scan_source("x = hash(y)\n", path="mod.py")
        assert finding == Finding("DET006", "mod.py", 1, 4, finding.message)
        assert finding.format().startswith("mod.py:1:4: DET006 ")
        assert finding.to_dict()["rule_id"] == "DET006"

    def test_findings_sorted_by_location(self):
        src = "b = hash(y)\na = time.time()\n"
        assert [f.line for f in scan_source(src)] == [1, 2]

    def test_catalogue_lists_every_rule(self):
        text = rule_catalogue()
        for rule_id in DET_RULES:
            assert rule_id in text
        assert "det: ok" in text

    def test_scan_paths_recurses_sorted(self, tmp_path):
        (tmp_path / "b.py").write_text("x = hash(y)\n")
        sub = tmp_path / "a_sub"
        sub.mkdir()
        (sub / "a.py").write_text("t = time.time()\n")
        findings = scan_paths([tmp_path])
        assert [f.rule_id for f in findings] == ["DET003", "DET006"]


class TestCliEntry:
    def test_main_reports_findings_and_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("x = random.random()\n")
        assert main([str(bad)]) == 1
        captured = capsys.readouterr()
        assert "DET004" in captured.out
        assert "det: ok" in captured.err

    def test_main_clean_exits_0(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main([str(good)]) == 0
        assert "no determinism hazards" in capsys.readouterr().err

    def test_rules_flag(self, capsys):
        assert main(["--rules"]) == 0
        assert "DET001" in capsys.readouterr().out

    def test_module_entry_point(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("for x in {1, 2}:\n    pass\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.determinism", str(bad)],
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 1
        assert "DET001" in proc.stdout


class TestTreeIsClean:
    def test_src_repro_has_zero_findings(self):
        """The guarantee CI enforces: the shipped tree scans clean."""
        findings = scan_paths([REPO_ROOT / "src" / "repro"])
        assert findings == [], "\n".join(f.format() for f in findings)
