"""The CDG verifier over arbitrary node/port graphs (no mesh, no coords).

The generalization contract: the channel-dependency construction and the
deadlock verdicts must work from the :class:`PortGraph` surface alone —
nodes, ports, ``neighbor`` and ``arrival_port`` — so that irregular
topologies (rings with string ports, express links, trees) verify through
exactly the same code path as the 2-D mesh.  Equivalence with the mesh
implementation is pinned by lifting a real mesh into a
:class:`GraphTopology` and comparing verdicts channel-for-channel.
"""

import pytest

from repro.analysis.cdg import ChannelDependencyGraph, verify_deadlock_freedom
from repro.noc.flit import Flit
from repro.noc.routing import FaultAwareRouting
from repro.noc.topology import GraphTopology, MeshTopology, PortGraph
from repro.types import Direction, FlitType


def ring(n):
    """A bidirectional n-ring with string ports 'cw'/'ccw'."""
    return GraphTopology(
        {
            i: {"cw": (i + 1) % n, "ccw": (i - 1) % n}
            for i in range(n)
        }
    )


class ClockwiseRouting:
    """Always route clockwise — deliberately deadlock-prone on a ring."""

    def candidates(self, topology, current, flit):
        if current == flit.dst:
            return [Direction.LOCAL]
        return ["cw"]


class ShortestRingRouting:
    """Minimal ring routing: go whichever way is fewer hops (cw on ties).

    Still deadlock-prone (each direction's channels form a cycle); used to
    check the witness is a genuine cycle of the graph.
    """

    def __init__(self, n):
        self.n = n

    def candidates(self, topology, current, flit):
        if current == flit.dst:
            return [Direction.LOCAL]
        forward = (flit.dst - current) % self.n
        return ["cw"] if forward <= self.n - forward else ["ccw"]


def header(dst):
    return Flit(-1, 0, FlitType.HEAD, -1, dst)


class TestGraphTopologySurface:
    def test_satisfies_the_port_graph_protocol(self):
        assert isinstance(ring(4), PortGraph)
        assert isinstance(MeshTopology(2, 2), PortGraph)

    def test_nodes_and_ports(self):
        g = ring(4)
        assert g.num_nodes == 4
        assert list(g.nodes()) == [0, 1, 2, 3]
        assert g.connected_directions(2) == ["ccw", "cw"]
        assert g.neighbor(3, "cw") == 0
        assert g.neighbor(3, "ccw") == 2
        assert g.neighbor(3, "missing") is None

    def test_arrival_port_inverts_neighbor(self):
        g = ring(5)
        for node in g.nodes():
            for port in g.connected_directions(node):
                neighbor = g.neighbor(node, port)
                back = g.arrival_port(node, port)
                assert g.neighbor(neighbor, back) == node

    def test_neighbor_only_nodes_are_added(self):
        g = GraphTopology({"a": {"out": "b"}})
        assert sorted(g.nodes()) == ["a", "b"]
        assert g.connected_directions("b") == []

    def test_one_way_channel_has_no_arrival_port(self):
        g = GraphTopology({"a": {"out": "b"}, "b": {}})
        assert g.arrival_port("a", "out") is None

    def test_distance_follows_directed_channels(self):
        g = GraphTopology({"a": {"out": "b"}, "b": {"out": "c"}, "c": {}})
        assert g.distance("a", "c") == 2
        assert g.distance("c", "a") == -1
        assert g.distance("b", "b") == 0


class TestGenericCdg:
    def test_clockwise_ring_is_flagged_with_ring_witness(self):
        g = ring(4)
        verdict = verify_deadlock_freedom(g, ClockwiseRouting())
        assert not verdict.deadlock_free
        # Only the 4 clockwise channels exist, and they form the cycle.
        assert verdict.num_channels == 4
        assert len(verdict.witness) == 4
        graph = ChannelDependencyGraph.build(g, ClockwiseRouting())
        assert graph.is_cycle(list(verdict.witness))

    def test_shortest_ring_routing_is_flagged_on_large_rings(self):
        g = ring(6)
        verdict = verify_deadlock_freedom(g, ShortestRingRouting(6))
        assert not verdict.deadlock_free
        graph = ChannelDependencyGraph.build(g, ShortestRingRouting(6))
        assert graph.is_cycle(list(verdict.witness))

    def test_triangle_ring_is_deadlock_free(self):
        # Every shortest path is a single hop: no packet ever chains two
        # channels, so the CDG has no edges at all (mirrors the 3-ring
        # torus exemption of NOC008).
        verdict = verify_deadlock_freedom(ring(3), ShortestRingRouting(3))
        assert verdict.deadlock_free
        assert verdict.num_dependencies == 0

    def test_witness_describes_generic_ports(self):
        verdict = verify_deadlock_freedom(ring(4), ClockwiseRouting())
        assert verdict.witness_text[0] == "0->1 via cw"


class TestFaultAwareRoutingOnGenericGraphs:
    """up*/down* table routing never needed a mesh — prove it."""

    def irregular(self):
        # A 6-node graph: a 4-ring with a stub and an express chord.
        # Node ids are strings throughout (ids must be mutually sortable).
        #
        #     s - n0 - n1
        #          |    |
        #         n3 - n2 - e   (e also linked straight to n0: the chord)
        adjacency = {
            "n0": {"ring+": "n1", "ring-": "n3", "stub": "s", "chord": "e"},
            "n1": {"ring+": "n2", "ring-": "n0"},
            "n2": {"ring+": "n3", "ring-": "n1", "express": "e"},
            "n3": {"ring+": "n0", "ring-": "n2"},
            "s": {"up": "n0"},
            "e": {"up": "n2", "chord": "n0"},
        }
        return GraphTopology(adjacency)

    def test_builds_and_is_deadlock_free(self):
        g = self.irregular()
        fn = FaultAwareRouting(g)
        verdict = verify_deadlock_freedom(g, fn)
        assert verdict.deadlock_free

    def test_tables_deliver_every_pair(self):
        g = self.irregular()
        fn = FaultAwareRouting(g)
        for src in g.nodes():
            for dst in g.nodes():
                if src != dst:
                    assert fn.is_reachable(src, dst), (src, dst)

    def test_walks_terminate_at_destination(self):
        g = self.irregular()
        fn = FaultAwareRouting(g)
        for src in g.nodes():
            for dst in g.nodes():
                if src == dst:
                    continue
                node, in_port = src, Direction.LOCAL
                for _ in range(4 * g.num_nodes):
                    dirs = fn.candidates_from(g, node, in_port, header(dst))
                    assert dirs, f"stranded at {node} en route {src}->{dst}"
                    if dirs[0] is Direction.LOCAL:
                        assert node == dst
                        break
                    in_port = g.arrival_port(node, dirs[0])
                    node = g.neighbor(node, dirs[0])
                else:
                    pytest.fail(f"walk {src}->{dst} did not terminate")

    def test_degraded_rebuild_on_generic_graph(self):
        g = self.irregular()
        fn = FaultAwareRouting(g)
        # Kill the express link both ways; everything stays connected via
        # the ring, so every pair must remain routable and deadlock-free.
        fn.rebuild({("n2", "express"), ("e", "up")}, set())
        for src in g.nodes():
            for dst in g.nodes():
                if src != dst:
                    assert fn.is_reachable(src, dst), (src, dst)
        assert verify_deadlock_freedom(g, fn).deadlock_free


class TestMeshEquivalence:
    """A mesh lifted into GraphTopology gets the identical verdict."""

    def lift(self, mesh):
        return GraphTopology(
            {
                node: {
                    direction: mesh.neighbor(node, direction)
                    for direction in mesh.connected_directions(node)
                }
                for node in mesh.nodes()
            }
        )

    @pytest.mark.parametrize("dims", [(3, 3), (4, 4), (5, 3)])
    def test_fault_aware_verdicts_match(self, dims):
        mesh = MeshTopology(*dims)
        lifted = self.lift(mesh)
        native = verify_deadlock_freedom(mesh, FaultAwareRouting(mesh), 3)
        generic = verify_deadlock_freedom(lifted, FaultAwareRouting(lifted), 3)
        assert native.deadlock_free and generic.deadlock_free
        assert native.num_channels == generic.num_channels
        assert native.num_dependencies == generic.num_dependencies

    def test_channel_sets_match_channel_for_channel(self):
        mesh = MeshTopology(3, 3)
        lifted = self.lift(mesh)
        native = ChannelDependencyGraph.build(mesh, FaultAwareRouting(mesh))
        generic = ChannelDependencyGraph.build(lifted, FaultAwareRouting(lifted))
        as_tuples = lambda g: {(c.src, c.dst, c.direction) for c in g.channels}  # noqa: E731
        assert as_tuples(native) == as_tuples(generic)
