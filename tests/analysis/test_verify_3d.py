"""Static certification of the 3D stack: dimension-ordered routing must
certify deadlock-free on a 3x3x3 mesh, and the fault-aware rebuild must
survive every possible single-link kill (TSVs included)."""

import pytest

from repro.analysis.verify import (
    STANDARD_TARGETS,
    certify_config,
    certify_fault_trial,
    directed_channels,
    sweep_single_link_kills,
    topology_of,
)
from repro.config import NoCConfig, SimulationConfig
from repro.types import Direction, RoutingAlgorithm


def _config3d(**noc_kw) -> SimulationConfig:
    noc_kw.setdefault("shape", (3, 3, 3))
    noc_kw.setdefault("topology", "mesh3d")
    noc_kw.setdefault("link_latency", (1, 1, 2))
    noc_kw.setdefault("retx_buffer_depth", 5)
    noc_kw.setdefault("routing", RoutingAlgorithm.XY)
    return SimulationConfig(noc=NoCConfig(**noc_kw))


class TestDOR3DCertification:
    def test_dor_certifies_on_3x3x3_mesh(self):
        entry = certify_config(_config3d(), name="mesh3x3x3")
        routing = entry["routing"]
        assert routing["certified"] is True
        assert routing["connected"] is True
        assert routing["livelock_free"] is True
        assert routing["deadlock_free"] is True
        # All 27*26 ordered pairs have a proven route.
        assert routing["delivered_pairs"] == 27 * 26

    def test_platform_block_is_shape_normalized(self):
        entry = certify_config(_config3d(), name="mesh3x3x3")
        platform = entry["platform"]
        assert platform["shape"] == [3, 3, 3]
        assert platform["link_latency"] == [1, 1, 2]
        assert "width" not in platform and "height" not in platform

    def test_2d_platform_block_keeps_legacy_keys(self):
        config = SimulationConfig(noc=NoCConfig(shape=(5, 5)))
        platform = certify_config(config, name="mesh5x5")["platform"]
        assert platform["width"] == 5 and platform["height"] == 5
        assert "shape" not in platform


class TestExhaustiveSingleLinkKills3D:
    def test_every_single_link_kill_stays_certified(self):
        """The fault-aware rebuild must keep every surviving pair
        connected, livelock-free and deadlock-free for each of the 108
        possible single-link kills of the 3x3x3 mesh."""
        topology = topology_of(_config3d())
        verdict = sweep_single_link_kills(topology)
        assert verdict.trials == 108  # 72 planar + 36 vertical channels
        assert verdict.certified is True
        assert verdict.all_connected is True
        assert verdict.all_deadlock_free is True
        assert verdict.min_delivered_fraction == 1.0

    def test_tsv_kill_reroutes_through_other_pillars(self):
        topology = topology_of(_config3d())
        vertical = [
            chan
            for chan in directed_channels(topology)
            if chan[1] in (Direction.UP, Direction.DOWN)
        ]
        assert len(vertical) == 36  # 9 pillars x 2 edges x 2 directions
        cert = certify_fault_trial(topology, [vertical[0]])
        assert cert.certified is True
        assert cert.connected is True


class TestStandardTargetPin:
    def test_3d_target_is_pinned_in_the_certificate(self):
        names = [t["name"] for t in STANDARD_TARGETS]
        assert "mesh3x3x3_dor" in names
        target = next(t for t in STANDARD_TARGETS if t["name"] == "mesh3x3x3_dor")
        assert target["expect"]["certified"] is True
        assert target["expect"]["single_link_kills_certified"] is True
