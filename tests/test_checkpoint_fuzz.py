"""Property-based fuzz smoke for checkpoint/resume.

Seeded, bounded generation of *valid* configurations (each must pass the
``repro lint`` ERROR rules — the generator constructs within the NOC0xx
envelope deliberately), then for every one: a 200-cycle run with the
per-cycle invariant sanitizer on, interrupted at the midpoint via a real
checkpoint file, resumed, and required to finish bit-for-bit equal to the
uninterrupted run.  Catches state the snapshot forgets to carry — a new
field added to a router, a fresh RNG draw, an unpickled cache — across a
far wider config cross-product than the hand-written scenarios.
"""

import random

import pytest

from repro.analysis.linter import lint_config
from repro.checkpoint import load_checkpoint, save_checkpoint
from repro.config import FaultConfig, NoCConfig, SimulationConfig, WorkloadConfig
from repro.faults.intermittent import (
    IntermittentFault,
    IntermittentFaultSchedule,
    WearOutConfig,
)
from repro.experiments.degradation import mesh_links
from repro.noc.simulator import Simulator
from repro.serialization import result_to_dict
from repro.types import FaultSite, LinkProtection, RoutingAlgorithm

RUN_CYCLES = 200
SEEDS = range(8)


def _random_config(rng: random.Random) -> SimulationConfig:
    """One bounded-random, lint-clean configuration."""
    width = rng.randint(2, 4)
    height = rng.randint(2, 4)
    routing = rng.choice(
        [
            RoutingAlgorithm.XY,
            RoutingAlgorithm.WEST_FIRST,
            RoutingAlgorithm.FULLY_ADAPTIVE,
        ]
    )
    # Fully-adaptive has cyclic channel dependencies (NOC004): it is only
    # valid with deadlock recovery; the others get it at random (NOC005
    # is a warning, not an error).
    deadlock_recovery = routing is RoutingAlgorithm.FULLY_ADAPTIVE
    flits = rng.randint(2, 4)
    vc_depth = rng.randint(flits, flits + 2)  # NOC007 wants a whole packet
    # Generous retransmission depth keeps NOC001's Eq. 1 bound satisfied
    # whenever recovery is on (and NOC002's round-trip floor always).
    retx_depth = vc_depth + flits if deadlock_recovery else rng.randint(3, 5)
    sites = rng.sample(sorted(FaultSite, key=lambda s: s.value), k=rng.randint(0, 3))
    rates = {site: rng.choice([0.001, 0.005, 0.01]) for site in sites}
    noc = NoCConfig(
        width=width,
        height=height,
        num_vcs=rng.randint(2, 3),
        vc_buffer_depth=vc_depth,
        flits_per_packet=flits,
        retx_buffer_depth=retx_depth,
        pipeline_stages=rng.choice([1, 2, 3, 4]),
        routing=routing,
        link_protection=rng.choice(list(LinkProtection)),
        deadlock_recovery_enabled=deadlock_recovery,
        deadlock_threshold=rng.randint(16, 48),
    )
    patterns = ["uniform", "bit_complement"]
    if width == height:
        patterns.append("transpose")  # transpose needs a square mesh
    workload = WorkloadConfig(
        pattern=rng.choice(patterns),
        injection_rate=rng.choice([0.05, 0.1, 0.2]),
        num_messages=10_000_000,  # the 200-cycle bound below is the limit
        warmup_messages=rng.randint(0, 10),
        max_cycles=RUN_CYCLES,
        seed=rng.randint(0, 2**31),
    )
    # Sometimes add an intermittent/wear-out lifecycle over a couple of
    # connected links (the per-site RNG streams and burst windows are part
    # of what the checkpoint must carry).
    intermittent = IntermittentFaultSchedule.empty()
    wear_out = None
    if rng.random() < 0.5:
        sites = rng.sample(mesh_links(width, height), k=rng.randint(1, 2))
        intermittent = IntermittentFaultSchedule.of(
            *(
                IntermittentFault(
                    node,
                    direction,
                    rate=rng.choice([0.1, 0.3, 0.45]),
                    mean_on=rng.choice([8.0, 20.0]),
                    mean_off=rng.choice([30.0, 80.0]),
                    start=rng.choice([0, 40]),
                )
                for node, direction in sites
            )
        )
        if rng.random() < 0.5:
            # Low thresholds so escalation can land inside the 200-cycle
            # window; traversal weight makes stress grow with traffic.
            wear_out = WearOutConfig(
                threshold=rng.choice([5.0, 30.0]),
                strike_weight=1.0,
                traversal_weight=rng.choice([0.0, 0.1]),
            )
    return SimulationConfig(
        noc=noc,
        faults=FaultConfig(
            rates=rates,
            seed=rng.randint(0, 2**31),
            intermittent=intermittent,
            wear_out=wear_out,
        ),
        workload=workload,
        invariant_checks=True,
        activity_driven=rng.choice([True, False]),
    )


def _observables(result):
    out = result_to_dict(result)
    out.pop("config")
    return out


@pytest.mark.parametrize("seed", SEEDS)
def test_random_config_lint_run_checkpoint_resume(seed, tmp_path):
    rng = random.Random(seed)
    config = _random_config(rng)

    report = lint_config(config, source=f"fuzz-seed-{seed}")
    assert not report.errors, [d.format() for d in report.errors]

    golden = Simulator(config).run()
    assert golden.cycles == RUN_CYCLES  # bounded for CI

    sim = Simulator(config)
    sim.run_to_cycle(RUN_CYCLES // 2)
    path = tmp_path / "fuzz.ckpt"
    save_checkpoint(sim, path)
    del sim
    resumed = load_checkpoint(path)
    assert resumed.resumed_from_cycle == RUN_CYCLES // 2
    assert _observables(resumed.run()) == _observables(golden)
