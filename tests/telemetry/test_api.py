"""The ``repro.api`` facade: load_config, run, sweep, lint, degrade."""

import json
import warnings

import pytest

from repro import api
from repro.config import SimulationConfig
from repro.types import LinkProtection


class TestLoadConfig:
    def test_defaults(self):
        config = api.load_config()
        assert config == SimulationConfig()

    def test_flat_overrides(self):
        config = api.load_config(
            width=4, height=4, vcs=2, scheme="e2e", rate=0.1,
            messages=50, warmup=5, seed=9, link_error_rate=0.01,
        )
        assert config.noc.width == 4
        assert config.noc.num_vcs == 2
        assert config.noc.link_protection is LinkProtection.E2E
        assert config.workload.injection_rate == 0.1
        assert config.workload.num_messages == 50
        assert config.workload.seed == 9
        assert config.faults.seed == 9  # seed applies to both sections
        assert config.faults.rates  # link rate landed

    def test_telemetry_shorthand(self):
        config = api.load_config(telemetry=True, metrics_interval=25)
        assert config.telemetry.enabled is True
        assert config.telemetry.metrics_interval == 25
        explicit = api.load_config(
            telemetry=api.TelemetryConfig(enabled=True, series_capacity=16)
        )
        assert explicit.telemetry.series_capacity == 16

    def test_from_existing_config_and_dict(self):
        base = api.load_config(width=4, height=4)
        again = api.load_config(base, rate=0.3)
        assert again.noc.width == 4
        assert again.workload.injection_rate == 0.3
        from_dict = api.load_config(api.config_to_dict(base))
        assert from_dict == base

    def test_from_json_file_and_string(self, tmp_path):
        base = api.load_config(width=4, height=4)
        text = json.dumps(api.config_to_dict(base))
        assert api.load_config(text) == base
        path = tmp_path / "config.json"
        path.write_text(text)
        assert api.load_config(path) == base
        assert api.load_config(str(path)) == base

    def test_unknown_override_rejected(self):
        with pytest.raises(TypeError, match="wdith"):
            api.load_config(wdith=4)


class TestRun:
    def test_run_with_overrides(self):
        result = api.run(width=3, height=3, messages=60, warmup=10)
        assert result.packets_delivered >= 60
        assert result.telemetry is None

    def test_run_existing_config_is_not_copied(self):
        config = api.load_config(width=3, height=3, messages=40, warmup=5)
        result = api.run(config)
        assert result.config is config

    def test_run_with_telemetry_path(self, tmp_path):
        path = tmp_path / "out.ndjson"
        result = api.run(
            width=3, height=3, messages=40, warmup=5,
            telemetry_path=path, metrics_interval=20,
        )
        assert result.telemetry is not None
        lines = path.read_text().splitlines()
        assert api.validate_ndjson_lines(lines) == []


class TestSweepLintDegrade:
    def test_sweep_orders_rates(self):
        results = api.sweep(
            width=3, height=3, messages=40, warmup=5, rates=[0.05, 0.2]
        )
        assert [r.config.workload.injection_rate for r in results] == [0.05, 0.2]
        assert all(r.packets_delivered == 40 for r in results)

    def test_lint_flags_and_file(self, tmp_path):
        assert api.lint(width=4, height=4).exit_code == 0
        bad = api.config_to_dict(api.load_config(width=4, height=4))
        bad["noc"]["retx_buffer_depth"] = 1  # NOC002: below Section 3.1 bound
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        report = api.lint(path)
        assert report.diagnostics

    def test_degrade_surface(self):
        points = api.degrade(
            width=4, height=4, max_kills=1, inject_cycles=200
        )
        assert [p.kills for p in points] == [0, 1]


class TestDeprecatedKwargs:
    def test_run_simulation_warns_on_unknown_keywords(self):
        from repro.noc.simulator import run_simulation

        config = api.load_config(width=3, height=3, messages=30, warmup=5)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = run_simulation(config, legacy_knob=1)
        assert result.packets_delivered == 30
        assert any(
            issubclass(w.category, DeprecationWarning)
            and "legacy_knob" in str(w.message)
            for w in caught
        )

    def test_explicit_keywords_do_not_warn(self):
        from repro.noc.simulator import run_simulation

        config = api.load_config(width=3, height=3, messages=30, warmup=5)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run_simulation(config, pattern=None, injection=None)
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]


class TestPackageExports:
    def test_top_level_reexports(self):
        import repro

        assert repro.api is api
        assert repro.TelemetryConfig is api.TelemetryConfig
        assert repro.TelemetryReport is api.TelemetryReport
