"""TelemetryReport accessors: series extraction, heatmaps, summaries."""

import pytest

from repro.telemetry.bus import TelemetryEvent
from repro.telemetry.report import TelemetryReport


def _report(**kw):
    defaults = dict(width=2, height=2, metrics_interval=10)
    defaults.update(kw)
    return TelemetryReport(**defaults)


class TestEvents:
    def test_events_of_and_counts(self):
        report = _report(
            events=[
                TelemetryEvent(5, "nack", 1),
                TelemetryEvent(7, "flit_drop", 2),
                TelemetryEvent(9, "nack", 3),
            ]
        )
        assert [e.cycle for e in report.events_of("nack")] == [5, 9]
        assert report.event_counts() == {"nack": 2, "flit_drop": 1}


class TestSeries:
    def test_get_series_and_last(self):
        report = _report(
            series={
                ("delivered_packets", "global"): [(10, 1.0), (20, 4.0)],
                ("vc_occupancy", "0"): [(10, 2.0)],
            }
        )
        assert report.get_series("delivered_packets") == [(10, 1.0), (20, 4.0)]
        assert report.last("delivered_packets") == 4.0
        assert report.last("vc_occupancy", "0") == 2.0
        assert report.last("vc_occupancy", "3") == 0.0
        assert report.num_samples == 3
        assert report.metrics() == ["delivered_packets", "vc_occupancy"]
        assert report.components("vc_occupancy") == ["0"]


class TestHeatmap:
    def test_node_metric_lands_on_the_grid(self):
        report = _report(
            series={
                ("vc_occupancy", "0"): [(10, 2.0), (20, 4.0)],
                ("vc_occupancy", "3"): [(10, 1.0), (20, 3.0)],
            }
        )
        grid = report.heatmap("vc_occupancy")
        assert grid == [[3.0, 0.0], [0.0, 2.0]]
        assert report.heatmap("vc_occupancy", reduce="max") == [
            [4.0, 0.0],
            [0.0, 3.0],
        ]
        assert report.heatmap("vc_occupancy", reduce="last") == [
            [4.0, 0.0],
            [0.0, 3.0],
        ]

    def test_link_metric_aggregates_directions(self):
        report = _report(
            series={
                ("link_utilization", "1:east"): [(10, 0.4)],
                ("link_utilization", "1:north"): [(10, 0.2)],
            }
        )
        grid = report.heatmap("link_utilization")
        assert grid[0][1] == pytest.approx(0.3)

    def test_global_series_are_not_placed(self):
        report = _report(
            series={("delivered_packets", "global"): [(10, 9.0)]}
        )
        assert report.heatmap("delivered_packets") == [[0.0, 0.0], [0.0, 0.0]]

    def test_unknown_reduction_rejected(self):
        with pytest.raises(ValueError):
            _report().heatmap("vc_occupancy", reduce="median")


class TestRenderHeatmap:
    def test_ascii_rendering(self):
        from repro.report import render_heatmap

        out = render_heatmap(
            [[0.0, 1.0], [2.0, 3.5]], title="t", fmt="{:.1f}"
        )
        lines = out.splitlines()
        assert lines[0] == "t"
        assert "2.0" in lines[1] and "3.5" in lines[1]  # y1 row on top
        assert "0.0" in lines[2] and "1.0" in lines[2]
        assert lines[-1].strip().startswith("x0")

    def test_empty_grid_rejected(self):
        from repro.report import render_heatmap

        with pytest.raises(ValueError):
            render_heatmap([])


class TestSummary:
    def test_summary_shape(self):
        report = _report(
            events=[TelemetryEvent(1, "nack", 0)],
            dropped_events=2,
            series={("delivered_packets", "global"): [(10, 1.0)]},
        )
        assert report.summary() == {
            "events": 1,
            "dropped_events": 2,
            "samples": 1,
            "series": 1,
            "metrics_interval": 10,
            "event_counts": {"nack": 1},
            "deadlock_snapshots": 0,
        }
