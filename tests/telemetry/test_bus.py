"""TelemetryBus mechanics: publishing, capping, sampling, flight recorder."""

import pytest

from repro.config import FaultConfig, NoCConfig, SimulationConfig, WorkloadConfig
from repro.noc.network import Network
from repro.noc.simulator import run_simulation
from repro.telemetry import EVENT_KINDS, SERIES_METRICS, TelemetryBus, TelemetryConfig


def _bus(**kw):
    return TelemetryBus(TelemetryConfig(enabled=True, **kw))


class TestPublish:
    def test_records_event_with_data(self):
        bus = _bus()
        bus.publish(10, "nack", 3, kind="link", port=1, vc=0)
        (event,) = bus.events
        assert (event.cycle, event.kind, event.node) == (10, "nack", 3)
        assert event.data == {"kind": "link", "port": 1, "vc": 0}

    def test_data_may_shadow_positional_names(self):
        """``kind``/``node`` keys in data must not collide (positional-only)."""
        bus = _bus()
        bus.publish(5, "permanent_fault", 2, kind="router", node=2)
        assert bus.events[0].data == {"kind": "router", "node": 2}

    def test_max_events_cap_counts_drops(self):
        bus = _bus(max_events=3)
        for i in range(5):
            bus.publish(i, "flit_drop", 0)
        assert len(bus.events) == 3
        assert bus.dropped_events == 2

    def test_flight_recorder_outlives_the_cap(self):
        bus = _bus(max_events=2, flight_recorder_depth=4)
        for i in range(10):
            bus.publish(i, "flit_drop", 0)
        assert [e.cycle for e in bus.flight] == [6, 7, 8, 9]
        assert all(d["cycle"] >= 6 for d in bus.flight_dicts())

    def test_deadlock_snapshot_on_positive_probe_return(self):
        bus = _bus()
        bus.publish(100, "probe_launch", 5)
        bus.publish(130, "probe_return", 5, deadlock=False)
        assert bus.deadlock_snapshots == []
        bus.publish(160, "probe_return", 5, deadlock=True)
        assert len(bus.deadlock_snapshots) == 1
        cycle, events = bus.deadlock_snapshots[0]
        assert cycle == 160
        assert events[-1].kind == "probe_return"

    def test_events_off_publishes_nothing(self):
        bus = _bus(events=False)
        bus.publish(1, "nack", 0)
        assert bus.events == [] and len(bus.flight) == 0


class TestWiring:
    def test_disabled_config_means_no_bus(self):
        net = Network(SimulationConfig(noc=NoCConfig(width=3, height=3)))
        assert net.telemetry is None

    def test_enabled_config_wires_every_component(self):
        net = Network(
            SimulationConfig(
                noc=NoCConfig(width=3, height=3, deadlock_recovery_enabled=True),
                telemetry=TelemetryConfig(enabled=True),
            )
        )
        bus = net.telemetry
        assert bus is not None
        assert all(r.telemetry is bus for r in net.routers)
        assert all(ni.telemetry is bus for ni in net.interfaces)
        assert net.injector.telemetry is bus
        assert all(
            r.deadlock.telemetry_hook == bus.publish for r in net.routers
        )

    def test_sampler_covers_every_metric(self):
        config = SimulationConfig(
            noc=NoCConfig(width=3, height=3),
            workload=WorkloadConfig(
                injection_rate=0.1, num_messages=60, warmup_messages=10
            ),
            telemetry=TelemetryConfig(enabled=True, metrics_interval=20),
        )
        report = run_simulation(config).telemetry
        assert set(report.metrics()) == set(SERIES_METRICS)

    def test_sampling_at_exact_interval_cycles(self):
        config = SimulationConfig(
            noc=NoCConfig(width=3, height=3),
            workload=WorkloadConfig(
                injection_rate=0.1, num_messages=60, warmup_messages=10
            ),
            telemetry=TelemetryConfig(enabled=True, metrics_interval=25),
        )
        report = run_simulation(config).telemetry
        cycles = [c for c, _ in report.get_series("delivered_packets")]
        assert cycles and all(c % 25 == 0 for c in cycles)
        assert cycles == sorted(cycles)

    def test_series_ring_capacity_bounds_memory(self):
        config = SimulationConfig(
            noc=NoCConfig(width=3, height=3),
            workload=WorkloadConfig(
                injection_rate=0.05, num_messages=200, warmup_messages=10
            ),
            telemetry=TelemetryConfig(
                enabled=True, metrics_interval=5, series_capacity=8
            ),
        )
        report = run_simulation(config).telemetry
        assert all(
            len(samples) <= 8 for samples in report.series.values()
        )
        # Rings keep the newest samples.
        cycles = [c for c, _ in report.get_series("delivered_packets")]
        assert cycles[-1] >= report.metrics_interval * 8


class TestEventTaxonomy:
    def test_fault_run_publishes_only_known_kinds(self):
        config = SimulationConfig(
            noc=NoCConfig(width=4, height=4),
            faults=FaultConfig.link_only(0.05, seed=3),
            workload=WorkloadConfig(
                injection_rate=0.1, num_messages=150, warmup_messages=20
            ),
            telemetry=TelemetryConfig(enabled=True, metrics_interval=50),
        )
        report = run_simulation(config).telemetry
        kinds = set(report.event_counts())
        assert kinds  # the 5% scenario always produces events
        assert kinds <= EVENT_KINDS

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(metrics_interval=0)
        with pytest.raises(ValueError):
            TelemetryConfig(series_capacity=0)

    def test_config_round_trip(self):
        config = TelemetryConfig(enabled=True, metrics_interval=7, events=False)
        assert TelemetryConfig.from_dict(config.to_dict()) == config
        assert TelemetryConfig.from_dict(None) == TelemetryConfig()
