"""NDJSON export: golden-file pin, envelope shape, and the validator.

The golden scenario lives in ``tools/regen_telemetry_golden.py`` (imported
here via importlib, same pattern as ``tests/test_docs_links.py``) so the
committed file and this test can never disagree about what was run.
"""

import importlib.util
import json
import pathlib

import pytest

regen_spec = importlib.util.spec_from_file_location(
    "regen_telemetry_golden",
    pathlib.Path(__file__).resolve().parent.parent.parent
    / "tools"
    / "regen_telemetry_golden.py",
)
regen = importlib.util.module_from_spec(regen_spec)
regen_spec.loader.exec_module(regen)

from repro.telemetry import SCHEMA_VERSION, validate_ndjson_lines  # noqa: E402


@pytest.fixture(scope="module")
def golden_lines():
    return regen.golden_lines()


class TestGoldenFile:
    def test_seeded_run_matches_committed_golden(self, golden_lines):
        committed = regen.GOLDEN_PATH.read_text().splitlines()
        assert golden_lines == committed, (
            "telemetry NDJSON drifted from tests/telemetry/golden_run.ndjson; "
            "if the change is intentional, run "
            "`python tools/regen_telemetry_golden.py` and commit the diff"
        )

    def test_golden_stream_validates_clean(self, golden_lines):
        assert validate_ndjson_lines(golden_lines) == []

    def test_header_is_a_versioned_envelope(self, golden_lines):
        header = json.loads(golden_lines[0])
        assert header["schema"] == SCHEMA_VERSION
        assert header["command"] == "telemetry"
        assert header["config"]["noc"]["width"] == 4
        assert header["result"]["events"] > 0
        assert header["result"]["samples"] > 0

    def test_events_precede_samples_in_cycle_order(self, golden_lines):
        records = [json.loads(line) for line in golden_lines[1:]]
        kinds = [r["type"] for r in records]
        assert "sample" in kinds and "event" in kinds
        first_sample = kinds.index("sample")
        assert all(k == "sample" for k in kinds[first_sample:])
        event_cycles = [r["cycle"] for r in records if r["type"] == "event"]
        assert event_cycles == sorted(event_cycles)


class TestValidator:
    def test_not_vacuously_green(self, golden_lines):
        """Planted corruption in a valid stream must be caught."""
        bad_kind = list(golden_lines)
        record = json.loads(bad_kind[1])
        record["kind"] = "made_up_event"
        bad_kind[1] = json.dumps(record)
        assert any("made_up_event" in p for p in validate_ndjson_lines(bad_kind))

        bad_json = list(golden_lines)
        bad_json[2] = "{not json"
        assert validate_ndjson_lines(bad_json)

        bad_header = list(golden_lines)
        header = json.loads(bad_header[0])
        header["schema"] = "repro/v999"
        bad_header[0] = json.dumps(header)
        assert validate_ndjson_lines(bad_header)

    def test_empty_stream_is_a_problem(self):
        (problem,) = validate_ndjson_lines([])
        assert "stream is empty" in problem

    def test_validate_telemetry_tool_wraps_the_validator(self, capsys):
        tool_spec = importlib.util.spec_from_file_location(
            "validate_telemetry",
            pathlib.Path(regen.__file__).parent / "validate_telemetry.py",
        )
        tool = importlib.util.module_from_spec(tool_spec)
        tool_spec.loader.exec_module(tool)
        assert tool.main([str(regen.GOLDEN_PATH)]) == 0
        assert "OK" in capsys.readouterr().out


class TestWriteNdjson:
    def test_write_and_summary(self, tmp_path):
        from repro.serialization import config_to_dict
        from repro.telemetry import write_ndjson

        from repro.noc.simulator import run_simulation

        config = regen.golden_config()
        result = run_simulation(config)
        path = tmp_path / "out.ndjson"
        summary = write_ndjson(
            result.telemetry, path, config=config_to_dict(config)
        )
        lines = path.read_text().splitlines()
        assert len(lines) == 1 + summary["events"] + summary["samples"]
        assert validate_ndjson_lines(lines) == []
