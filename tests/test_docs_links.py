"""The documentation link graph stays intact.

Wraps ``tools/check_docs_links.py`` so the docs link-check runs with the
normal test suite (CI also invokes the tool directly).
"""

import importlib.util
import pathlib

spec = importlib.util.spec_from_file_location(
    "check_docs_links",
    pathlib.Path(__file__).resolve().parent.parent / "tools" / "check_docs_links.py",
)
check_docs_links = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs_links)


def test_documentation_set_is_discovered():
    names = {p.name for p in check_docs_links.doc_files()}
    assert {"README.md", "ARCHITECTURE.md", "PERFORMANCE.md"} <= names


def test_no_broken_links_or_anchors():
    problems = check_docs_links.check_all()
    assert not problems, "\n".join(problems)


def test_checker_catches_breakage(tmp_path, monkeypatch):
    """The checker is not vacuously green: a planted broken link fails."""
    monkeypatch.setattr(check_docs_links, "REPO_ROOT", tmp_path)
    doc = tmp_path / "doc.md"
    doc.write_text(
        "# Title\n"
        "[ok](doc.md) [missing](nope.md) [bad anchor](#absent)\n"
        "[escape](../outside.md)\n"
        "```\n[inside a code fence, ignored](also-missing.md)\n```\n"
    )
    problems = check_docs_links.check_file(doc)
    assert len(problems) == 3
    assert any("nope.md" in p for p in problems)
    assert any("#absent" in p for p in problems)
    assert any("escapes" in p for p in problems)


def test_every_noc_module_is_documented():
    problems = check_docs_links.check_module_coverage()
    assert not problems, "\n".join(problems)


def test_module_coverage_catches_undocumented_modules(tmp_path, monkeypatch):
    """The coverage check is not vacuously green: an unreferenced module
    fails, and every reference idiom (plain, dotted, brace group) counts."""
    monkeypatch.setattr(check_docs_links, "REPO_ROOT", tmp_path)
    noc = tmp_path / "src" / "repro" / "noc"
    noc.mkdir(parents=True)
    for name in ("__init__", "router", "kernel", "flit", "packet", "ghost"):
        (noc / f"{name}.py").touch()
    docs = tmp_path / "docs"
    docs.mkdir()
    (docs / "page.md").write_text(
        "# Page\nSee `noc/router.py`, `repro.noc.kernel` and\n"
        "```\nnoc/{flit,packet}.py\n```\n"
    )
    problems = check_docs_links.check_module_coverage()
    assert len(problems) == 1
    assert "ghost.py" in problems[0]


def test_github_slugs():
    seen = {}
    assert check_docs_links.github_slug("Static analysis & linting", seen) == (
        "static-analysis--linting"
    )
    assert check_docs_links.github_slug("The `code` heading", {}) == (
        "the-code-heading"
    )
    # Duplicate headings get numbered suffixes.
    assert check_docs_links.github_slug("Static analysis & linting", seen) == (
        "static-analysis--linting-1"
    )
